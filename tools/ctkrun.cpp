// ctkrun — the test-stand interpreter (virtual stand edition).
//
// Executes an XML test script on a stand description against one of the
// built-in behavioural ECUs, exactly the role of the paper's per-stand
// interpreter.
//
//   usage: ctkrun <script.xml> --stand <stand-workbook> --dut <family>
//                 [--policy greedy|matching] [--csv <out.csv>]
//                 [--store <store.csv> --label <label>]
//          ctkrun --families [f1,f2,...] [--jobs N] [--repeat R]
//                 [--policy greedy|matching]
//
// The second form runs the knowledge-base campaign: every named family's
// suite (all of kb::families() when the flag has no value) compiled ONCE
// into an execution plan bound to its reference stand, then executed
// against a golden DUT — R times per family with --repeat (each
// repetition on a fresh backend, all sharing the family's plan) — fanned
// out over N worker threads (0 = one per hardware thread).
//
// The stand workbook holds sheets "resources", "connections", and
// "variables" (see stand::paper::figure1_workbook_text() for the layout).
// Exit codes: 0 all tests pass, 1 usage, 2 framework error (allocation,
// parsing), 3 DUT failed the tests.
#include <cmath>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "common/strings.hpp"
#include "core/campaign.hpp"
#include "core/engine.hpp"
#include "core/kb.hpp"
#include "core/regstore.hpp"
#include "dut/catalogue.hpp"
#include "report/report.hpp"
#include "script/xml_io.hpp"
#include "sim/virtual_stand.hpp"

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw ctk::Error("cannot read " + path);
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

} // namespace

int main(int argc, char** argv) {
    using namespace ctk;

    std::string script_path, stand_path, family, csv_path, store_path, label;
    auto policy = stand::AllocPolicy::Greedy;
    bool campaign_mode = false;
    std::vector<std::string> families;
    unsigned jobs = 0;
    unsigned repeat = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "ctkrun: " << arg << " needs a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--stand") stand_path = next();
        else if (arg == "--dut") family = next();
        else if (arg == "--csv") csv_path = next();
        else if (arg == "--store") store_path = next();
        else if (arg == "--label") label = next();
        else if (arg == "--families") {
            campaign_mode = true;
            // Optional comma-separated value; absent = all KB families.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                for (const auto& f : str::split(next(), ','))
                    families.push_back(std::string(str::trim(f)));
        } else if (arg == "--jobs") {
            const auto n = str::parse_number(next());
            if (!n || !(*n >= 0 && *n <= 4096) || *n != std::floor(*n)) {
                std::cerr << "ctkrun: --jobs needs an integer in "
                             "[0, 4096]\n";
                return 1;
            }
            jobs = static_cast<unsigned>(*n);
        } else if (arg == "--repeat") {
            const auto n = str::parse_number(next());
            if (!n || !(*n >= 1 && *n <= 4096) || *n != std::floor(*n)) {
                std::cerr << "ctkrun: --repeat needs an integer in "
                             "[1, 4096]\n";
                return 1;
            }
            repeat = static_cast<unsigned>(*n);
        } else if (arg == "--policy") {
            const std::string p = next();
            policy = p == "matching" ? stand::AllocPolicy::Matching
                                     : stand::AllocPolicy::Greedy;
        } else if (arg == "-h" || arg == "--help") {
            std::cout << "usage: ctkrun <script.xml> --stand <workbook> "
                         "--dut <family> [--policy greedy|matching] "
                         "[--csv out.csv] [--store store.csv --label L]\n"
                         "       ctkrun --families [f1,f2,...] [--jobs N] "
                         "[--repeat R] [--policy greedy|matching]\n";
            return 0;
        } else if (script_path.empty()) {
            script_path = arg;
        } else {
            std::cerr << "ctkrun: unexpected argument '" << arg << "'\n";
            return 1;
        }
    }

    if (campaign_mode) {
        if (!script_path.empty() || !stand_path.empty() || !family.empty() ||
            !csv_path.empty() || !store_path.empty() || !label.empty()) {
            std::cerr << "ctkrun: --families cannot be combined with a "
                         "script, --stand, --dut, --csv, --store or "
                         "--label\n";
            return 1;
        }
        try {
            if (families.empty()) families = core::kb::families();
            core::RunOptions run_opts;
            run_opts.policy = policy;
            core::CampaignOptions copts;
            copts.jobs = jobs;
            core::CampaignRunner runner(copts);
            // Each family's suite is bound to its stand exactly once;
            // the --repeat repetitions share the compiled plan. A family
            // whose plan fails to bind falls back to binding (and
            // failing) per repetition — report only what compiled.
            auto jobs_list = core::plan_campaign(families, repeat, run_opts);
            std::set<const core::CompiledPlan*> plans;
            for (const auto& job : jobs_list)
                if (job.plan) plans.insert(job.plan.get());
            std::cout << "ctkrun: " << plans.size() << "/"
                      << families.size()
                      << " plan(s) compiled once, executed x" << repeat
                      << "\n";
            for (auto& job : jobs_list) runner.add(std::move(job));
            const auto result = runner.run_all();
            std::cout << core::render_campaign(result);
            if (result.framework_failures() > 0) return 2;
            return result.passed() ? 0 : 3;
        } catch (const Error& e) {
            std::cerr << "ctkrun: " << e.what() << "\n";
            return 2;
        }
    }

    if (script_path.empty() || stand_path.empty() || family.empty()) {
        std::cerr << "usage: ctkrun <script.xml> --stand <workbook> "
                     "--dut <family>\n"
                     "       ctkrun --families [f1,f2,...] [--jobs N] "
                     "[--repeat R]\n";
        return 1;
    }

    try {
        const auto registry = model::MethodRegistry::builtin();
        const auto script =
            script::from_xml_text(slurp(script_path), registry, script_path);

        tabular::CsvOptions opts;
        opts.origin = stand_path;
        const auto stand_wb =
            tabular::Workbook::parse_multi(slurp(stand_path), opts);
        auto desc = stand::StandDescription::from_workbook(stand_wb,
                                                           stand_path);

        core::TestEngine engine(
            desc, std::make_shared<sim::VirtualStand>(
                      desc, dut::make_golden(family)));
        core::RunOptions run_opts;
        run_opts.policy = policy;
        const auto result = engine.run(script, run_opts);

        for (std::size_t i = 0; i < script.tests.size(); ++i)
            std::cout << report::render_test_sheet(script.tests[i],
                                                   result.tests[i])
                      << "\n";
        std::cout << report::render_summary(result);

        if (!csv_path.empty()) {
            std::ofstream out(csv_path);
            if (!out) throw Error("cannot write " + csv_path);
            out << report::to_csv(result);
        }
        if (!store_path.empty()) {
            core::RegressionStore store;
            if (std::ifstream probe(store_path); probe.good())
                store = core::RegressionStore::load(store_path);
            store.record(result, label.empty() ? "unlabelled" : label);
            store.save(store_path);
            std::cerr << "ctkrun: recorded " << result.tests.size()
                      << " test(s) in " << store_path << "\n";
        }
        return result.passed() ? 0 : 3;
    } catch (const Error& e) {
        std::cerr << "ctkrun: " << e.what() << "\n";
        return 2;
    }
}
