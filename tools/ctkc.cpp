// ctkc — the component-test compiler.
//
// Reads a multi-sheet workbook (the Excel-export stand-in: sheets named
// "signals", "status", plus one sheet per test; see docs/README) and
// emits the stand-independent XML test script.
//
//   usage: ctkc <workbook-file> [suite-name] [-o <out.xml>]
//
// Exit codes: 0 ok, 1 usage, 2 parse/validation error.
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.hpp"
#include "model/lint.hpp"
#include "model/sheets.hpp"
#include "script/xml_io.hpp"

int main(int argc, char** argv) {
    using namespace ctk;

    std::string in_path;
    std::string suite_name;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "-h" || arg == "--help") {
            std::cout << "usage: ctkc <workbook-file> [suite-name] "
                         "[-o <out.xml>]\n";
            return 0;
        } else if (in_path.empty()) {
            in_path = arg;
        } else if (suite_name.empty()) {
            suite_name = arg;
        } else {
            std::cerr << "ctkc: unexpected argument '" << arg << "'\n";
            return 1;
        }
    }
    if (in_path.empty()) {
        std::cerr << "usage: ctkc <workbook-file> [suite-name] "
                     "[-o <out.xml>]\n";
        return 1;
    }
    if (suite_name.empty()) suite_name = in_path;

    try {
        std::ifstream in(in_path);
        if (!in) throw Error("cannot read " + in_path);
        std::ostringstream body;
        body << in.rdbuf();

        tabular::CsvOptions opts;
        opts.origin = in_path;
        const auto wb = tabular::Workbook::parse_multi(body.str(), opts);
        const auto suite = model::suite_from_workbook(wb, suite_name);
        const auto registry = model::MethodRegistry::builtin();
        const std::string xml =
            script::to_xml_text(script::compile(suite, registry));

        for (const auto& w : model::lint(suite, registry))
            std::cerr << "ctkc: warning: " << w.to_string() << "\n";

        if (out_path.empty()) {
            std::cout << xml;
        } else {
            std::ofstream out(out_path);
            if (!out) throw Error("cannot write " + out_path);
            out << xml;
            std::cerr << "ctkc: wrote " << out_path << " (" << xml.size()
                      << " bytes, " << suite.tests.size() << " test(s))\n";
        }
        return 0;
    } catch (const Error& e) {
        std::cerr << "ctkc: " << e.what() << "\n";
        return 2;
    }
}
