// ctkd — the long-lived campaign/grading daemon (DESIGN.md §13).
//
// Start it once, point any number of `ctkgrade --kb --connect SOCK`
// clients at it: compiled plans and graded (fault, test) verdicts stay
// warm in the process between requests, so a repeat grading costs the
// golden runs plus a store replay instead of a full cold campaign.
// Coverage output through the daemon is byte-identical to the offline
// tool — the daemon changes *where* the work happens, never verdicts.
//
//   usage: ctkd --socket PATH [--sessions N] [--backlog N]
//               [--max-jobs N] [--store-root DIR] [--no-shard]
//               [--max-entries N] [--max-store-mb N]
//          ctkd --socket PATH --stop
//
// --sessions      concurrently served connections (default 4)
// --backlog       accepted connections allowed to wait for a session;
//                 one more is refused with a named "busy" error
// --max-jobs      per-request worker clamp (0 = no clamp). Deterministic:
//                 outcomes are worker-count independent, the clamp only
//                 bounds one request's CPU appetite.
// --store-root    persistence root: each cache entry's grade store is
//                 loaded from and saved back to a content-named directory
// --no-shard      serialize same-entry requests on the entry gate instead
//                 of splitting a cold entry's universe between them
//                 (the pre-sharding behaviour; replies are byte-identical
//                 either way — this is the bench's contention baseline)
// --max-entries   LRU-evict plan-cache entries past this count (0 = off)
// --max-store-mb  LRU-evict entries once summed grade-store bytes pass
//                 this bound (0 = off); evicted stores persist first
// --stop          connect to a running daemon and shut it down
//
// The daemon prints "ctkd: listening on PATH" once the socket is ready
// (CI waits for the socket file), serves until a Shutdown frame,
// SIGINT or SIGTERM, then drains, persists and prints a stats line.
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <iostream>
#include <thread>

#include "common/strings.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

const char* kUsage =
    "usage: ctkd --socket PATH [--sessions N] [--backlog N] [--max-jobs N]\n"
    "            [--store-root DIR] [--no-shard] [--max-entries N]\n"
    "            [--max-store-mb N]\n"
    "       ctkd --socket PATH --stop\n";

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

int run_stop(const std::string& socket_path) {
    using namespace ctk;
    try {
        service::DaemonClient client(socket_path);
        client.shutdown();
        std::cerr << "ctkd: daemon at " << socket_path << " stopping\n";
        return 0;
    } catch (const Error& e) {
        std::cerr << "ctkd: " << e.what() << "\n";
        return 2;
    }
}

} // namespace

int main(int argc, char** argv) {
    using namespace ctk;

    service::ServerOptions options;
    bool stop_mode = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "ctkd: " << arg << " needs a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        auto next_int = [&](double lo, double hi) -> unsigned {
            const auto n = str::parse_number(next());
            if (!n || !(*n >= lo && *n <= hi) || *n != std::floor(*n)) {
                std::cerr << "ctkd: " << arg << " needs an integer in ["
                          << lo << ", " << hi << "]\n";
                std::exit(1);
            }
            return static_cast<unsigned>(*n);
        };
        if (arg == "--socket") {
            options.socket_path = next();
        } else if (arg == "--sessions") {
            options.max_sessions = next_int(1, 256);
        } else if (arg == "--backlog") {
            options.backlog = next_int(1, 4096);
        } else if (arg == "--max-jobs") {
            options.max_request_jobs = next_int(0, 4096);
        } else if (arg == "--store-root") {
            options.store_root = next();
        } else if (arg == "--no-shard") {
            options.shard = false;
        } else if (arg == "--max-entries") {
            options.max_entries = next_int(0, 1e9);
        } else if (arg == "--max-store-mb") {
            options.max_store_mb = next_int(0, 1e9);
        } else if (arg == "--stop") {
            stop_mode = true;
        } else if (arg == "-h" || arg == "--help") {
            std::cout << kUsage;
            return 0;
        } else {
            std::cerr << "ctkd: unexpected argument '" << arg << "'\n";
            return 1;
        }
    }
    if (options.socket_path.empty()) {
        std::cerr << kUsage;
        return 1;
    }
    if (stop_mode) return run_stop(options.socket_path);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    try {
        service::CtkdServer server(options);
        server.start();
        std::cerr << "ctkd: listening on " << options.socket_path << " ("
                  << options.max_sessions << " session(s), backlog "
                  << options.backlog << ")\n";
        while (!server.stopping() && g_signal == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        server.stop();
        const auto& stats = server.stats();
        std::cerr << "ctkd: served " << stats.requests.load()
                  << " request(s) — " << stats.cache_hits.load()
                  << " plan-cache hit(s), " << stats.cache_misses.load()
                  << " miss(es), " << stats.busy_rejected.load()
                  << " busy-rejected, " << stats.protocol_errors.load()
                  << " protocol error(s); " << server.cache().entry_count()
                  << " cached entry(ies) over "
                  << server.cache().family_plan_count()
                  << " compiled family plan(s)";
        const auto evictions = server.cache().eviction_stats();
        if (evictions.entries_evicted > 0 || options.max_entries > 0 ||
            options.max_store_mb > 0)
            std::cerr << "; evicted " << evictions.entries_evicted
                      << " entry(ies), " << evictions.plans_evicted
                      << " orphaned plan(s), " << evictions.stores_persisted
                      << " store(s) persisted on evict";
        std::cerr << "\n";
        return 0;
    } catch (const Error& e) {
        std::cerr << "ctkd: " << e.what() << "\n";
        return 2;
    }
}
