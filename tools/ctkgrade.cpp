// ctkgrade — fault grading for gate-level and system-level DUTs,
// unified behind the coverage kernel (DESIGN.md §9).
//
// Gate mode (the original): loads an ISCAS .bench netlist (or one of
// the built-in circuits), grades its collapsed stuck-at universe with
// sharded random TPG (--jobs worker threads; --fault-packed swaps in
// the 64-faults-per-word engine of DESIGN.md §14, same masks and
// attribution) plus a PODEM top-up that consumes the undetected
// remainder straight from the coverage matrix.
//
// KB mode (--kb): grades the knowledge-base test suites themselves by
// system-level fault injection (DESIGN.md §8) — every family's suite is
// compiled once, run golden, then re-run against each entry of the
// family's generated fault universe (pin stuck/drift, CAN drop/corrupt,
// clock skew) on a worker pool.
//
// Augment mode (--kb --augment, DESIGN.md §10): after grading, the
// undetected remainder feeds the coverage-guided suite augmenter — the
// KB twin of the gate layer's PODEM top-up. Synthesized tests append to
// each family's suite, the suites are regraded to fixpoint, and --out
// exports the augmented suites as round-trippable KB XML.
//
// Both grading modes print the same coverage table, export the same CSV
// schema and honour the same flags: --jobs (worker threads; outcomes
// identical at any count), --detail (per-fault rows), --csv
// (machine-readable export) and --min-coverage (CI gate: exit 4 when
// total coverage is below the threshold, or when nothing was graded at
// all; in augment mode the gate judges the *after* coverage).
//
// KB mode additionally takes --universe base|scaled (the ~100x fault
// surface of DESIGN.md §11: drift magnitude ladders, intermittent pin
// faults, double faults) and --store DIR — the incremental grading
// store. With --store, previously graded (fault, test) verdicts and
// Untestable certificates are loaded before grading, only pairs whose
// plan content changed are replayed, and the updated store is saved
// back; coverage output is byte-identical to a cold run. --invalidate
// drops the loaded store content first (forces a full regrade that
// rewrites the store).
//
// Connect mode (--connect SOCK, DESIGN.md §13): instead of grading
// in-process, send the request to a running ctkd daemon and rebuild the
// coverage matrix from its streamed verdicts. Works for both modes: a
// KB request grades against the daemon's warm plan cache, a gate
// request ships the netlist (built-ins by name, files as .bench text)
// to gate::grade_netlist in the daemon. The matrix renders through
// the same report code, so the coverage table and CSV are byte-identical
// to offline mode; the daemon owns the grade store, so --store and
// --invalidate (and --augment) do not combine with --connect.
//
//   usage: ctkgrade <netlist.bench | builtin:NAME> [--patterns N]
//                   [--jobs N] [--detail] [--csv out.csv]
//                   [--min-coverage X] [--connect SOCK]
//          ctkgrade --kb [--families a,b] [--jobs N] [--detail]
//                   [--csv out.csv] [--min-coverage X]
//                   [--universe base|scaled] [--store DIR] [--invalidate]
//                   [--augment] [--budget N] [--seed S] [--out DIR]
//                   [--connect SOCK]
//          builtin names: c17, adder8, cmp8, mux16, alu4, parity16,
//          counter4 (sequential; random only)
//
// Exit codes: 0 ok, 1 usage, 2 parse/framework error, 3 KB grading hit
// framework-error faults (or a golden run failed), 4 coverage below
// --min-coverage — CI propagates 3 and 4.
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "core/augment.hpp"
#include "core/gradestore.hpp"
#include "core/grading.hpp"
#include "core/kb.hpp"
#include "gate/bench_io.hpp"
#include "gate/circuits.hpp"
#include "gate/grade.hpp"
#include "report/report.hpp"
#include "script/xml_io.hpp"
#include "service/client.hpp"

namespace {

ctk::gate::Netlist load(const std::string& spec) {
    using namespace ctk::gate;
    if (spec.rfind("builtin:", 0) == 0)
        return circuits::by_name(spec.substr(8));
    std::ifstream in(spec);
    if (!in) throw ctk::Error("cannot read " + spec);
    std::ostringstream body;
    body << in.rdbuf();
    return parse_bench(body.str(), spec);
}

const char* kUsage =
    "usage: ctkgrade <netlist.bench | builtin:NAME> [--patterns N] "
    "[--jobs N]\n"
    "                [--fault-packed] [--detail] [--csv out.csv] "
    "[--min-coverage X]\n"
    "                [--connect SOCK]\n"
    "       ctkgrade --kb [--families a,b] [--jobs N] [--detail]\n"
    "                [--csv out.csv] [--min-coverage X]\n"
    "                [--universe base|scaled] [--store DIR] "
    "[--invalidate]\n"
    "                [--lockstep [--block N] [--lockstep-scalar]]\n"
    "                [--augment] [--budget N] [--seed S] [--out DIR]\n"
    "                [--connect SOCK]\n";

/// Flags shared verbatim by both modes.
struct CommonOptions {
    unsigned jobs = 0;
    bool detail = false;
    std::string csv_path;
    double min_coverage = -1.0; ///< < 0 = no gate
};

/// Render, export and CI-gate one coverage matrix — the single tail
/// both modes funnel into.
int finish(const ctk::core::CoverageMatrix& matrix,
           const CommonOptions& options, int status) {
    using namespace ctk;
    std::cout << report::render_coverage(matrix, options.detail);
    if (!options.csv_path.empty()) {
        std::ofstream out(options.csv_path);
        if (!out) throw Error("cannot write " + options.csv_path);
        out << report::coverage_to_csv(matrix);
        std::cerr << "ctkgrade: wrote " << options.csv_path << "\n";
    }
    if (status != 0) return status;
    if (options.min_coverage >= 0.0) {
        const auto coverage = matrix.coverage();
        // No graded faults means no evidence the threshold is met:
        // fail closed rather than pass vacuously.
        if (!coverage || *coverage < options.min_coverage) {
            std::cerr << "ctkgrade: coverage "
                      << core::format_coverage(coverage) << " below "
                      << "--min-coverage "
                      << str::format_number(100.0 * options.min_coverage, 4)
                      << " %\n";
            return 4;
        }
    }
    return 0;
}

/// Incremental-store flags (--store DIR [--invalidate]).
struct StoreOptions {
    std::string dir;
    bool invalidate = false;
};

/// Load (or, with --invalidate, discard) the store before a KB run.
std::optional<ctk::core::GradeStore>
open_store(const StoreOptions& options) {
    if (options.dir.empty()) return std::nullopt;
    if (options.invalidate) return ctk::core::GradeStore{};
    return ctk::core::GradeStore::load(options.dir);
}

/// Persist the store and report what the warm run reused. Stats go to
/// stderr: stdout stays byte-identical between warm and cold runs.
void close_store(const ctk::core::GradeStore& store,
                 const StoreOptions& options) {
    store.save(options.dir);
    std::cerr << ctk::report::render_gradestore_stats(store.stats());
    std::cerr << "ctkgrade: wrote store " << options.dir << "\n";
}

/// Machine-grepable throughput summary, one line on stderr so stdout
/// stays byte-identical across engines and worker counts. Format:
///   ctkgrade-perf: mode=<kb|gate> engine=<...> faults=N wall_s=X
///                  faults_per_s=Y workers=W[ <extra>]
/// `extra` carries engine-specific fields (the --kb --lockstep phase
/// breakdown of DESIGN.md §14) and is appended verbatim.
void print_perf(const std::string& mode, const std::string& engine,
                std::size_t faults, double wall_s, unsigned workers,
                const std::string& extra = {}) {
    using namespace ctk;
    const double rate = wall_s > 0.0 ? static_cast<double>(faults) / wall_s
                                     : 0.0;
    std::cerr << "ctkgrade-perf: mode=" << mode << " engine=" << engine
              << " faults=" << faults << " wall_s="
              << str::format_number(wall_s, 3) << " faults_per_s="
              << str::format_number(rate, 1) << " workers=" << workers
              << extra << "\n";
}

int run_kb_grading(const std::vector<std::string>& families,
                   const CommonOptions& options,
                   const ctk::sim::UniverseOptions& universe,
                   const StoreOptions& store_options, bool lockstep,
                   std::size_t block, bool lockstep_scalar) {
    using namespace ctk;
    try {
        core::GradingOptions opts;
        opts.jobs = options.jobs;
        opts.universe = universe;
        opts.lockstep = lockstep;
        opts.block = block;
        opts.lockstep_packed = !lockstep_scalar;
        auto store = open_store(store_options);
        if (store) opts.store = &*store;
        const auto result = core::grade_kb(opts, families);
        if (store) close_store(*store, store_options);
        std::string extra;
        if (lockstep) {
            std::cerr << "ctkgrade: lockstep " << result.lockstep_captures
                      << " capture(s), " << result.lockstep_blocks
                      << " block(s), " << result.lockstep_lanes
                      << " lane(s)\n";
            // Phase breakdown (§14): capture vs evaluate wall, and the
            // packing density the word-parallel path achieved. The
            // evaluate wall sums across workers, so it can exceed the
            // end-to-end wall at --jobs > 1.
            const double density =
                result.lockstep_words != 0
                    ? static_cast<double>(result.lockstep_lane_evals) /
                          static_cast<double>(result.lockstep_words)
                    : 0.0;
            extra = std::string(" packed=") +
                    (result.lockstep_words != 0 ? "1" : "0") +
                    " capture_s=" +
                    str::format_number(result.lockstep_capture_s, 3) +
                    " evaluate_s=" +
                    str::format_number(result.lockstep_evaluate_s, 3) +
                    " lanes_per_word=" + str::format_number(density, 2);
        }
        print_perf("kb", lockstep ? "lockstep" : "per-fault",
                   result.fault_count(), result.wall_s, result.workers,
                   extra);
        // Low coverage is information; a framework error is a defect in
        // the grading harness or the stand — that must fail CI.
        return finish(result.to_coverage(), options,
                      result.clean() ? 0 : 3);
    } catch (const Error& e) {
        std::cerr << "ctkgrade: " << e.what() << "\n";
        return 2;
    }
}

/// KB grading through a running ctkd daemon (--connect). The streamed
/// verdicts rebuild a CoverageMatrix that funnels into the same
/// finish() tail as offline mode — identical table, identical CSV,
/// identical exit codes; only stderr says a daemon was involved.
int run_kb_connect(const std::string& socket_path,
                   const std::vector<std::string>& families,
                   const CommonOptions& options, bool scaled, bool lockstep,
                   std::size_t block) {
    using namespace ctk;
    try {
        service::DaemonClient client(socket_path);
        service::GradeRequestMsg request;
        request.families = families;
        request.universe = scaled ? 1 : 0;
        request.jobs = options.jobs;
        request.lockstep = lockstep ? 1 : 0;
        request.block = block;
        const service::GradeReply reply = client.grade(request);
        std::cerr << report::render_daemon_stats(
            reply.done.cache_hit != 0, reply.done.kb_hash,
            reply.done.stand_hash, reply.done.wall_s);
        std::cerr << report::render_gradestore_stats(reply.done.store);
        if (lockstep)
            std::cerr << "ctkgrade: lockstep " << reply.done.lockstep_captures
                      << " capture(s), " << reply.done.lockstep_blocks
                      << " block(s), " << reply.done.lockstep_lanes
                      << " lane(s)\n";
        print_perf("kb", "daemon", reply.matrix.fault_count(),
                   reply.done.wall_s, reply.done.workers);
        return finish(reply.matrix, options,
                      reply.matrix.clean() ? 0 : 3);
    } catch (const Error& e) {
        std::cerr << "ctkgrade: " << e.what() << "\n";
        return 2;
    }
}

/// Netlist grading through a running ctkd daemon (gate --connect). The
/// netlist is still loaded locally — the stdout preamble (gate counts,
/// full fault list) comes from it — but the grading runs in the daemon:
/// a built-in travels by name, a file netlist as .bench text. The
/// streamed verdicts rebuild the same matrix finish() always renders.
int run_gate_connect(const std::string& socket_path, const std::string& spec,
                     std::size_t budget, const CommonOptions& options,
                     bool fault_packed) {
    using namespace ctk;
    try {
        const gate::Netlist net = load(spec);

        service::DaemonClient client(socket_path);
        service::GradeRequestMsg request;
        request.mode = static_cast<std::uint8_t>(service::GradeMode::Gate);
        request.jobs = options.jobs;
        request.patterns = budget;
        request.fault_packed = fault_packed ? 1 : 0;
        if (spec.rfind("builtin:", 0) == 0) {
            request.netlist_name = spec;
        } else {
            request.netlist_name = net.name();
            request.netlist_text = gate::emit_bench(net);
        }
        const service::GradeReply reply = client.grade(request);

        const std::size_t collapsed =
            reply.matrix.groups.empty()
                ? 0
                : reply.matrix.groups.front().entries.size();
        std::cout << net.name() << ": " << net.size() << " gates, "
                  << net.inputs().size() << " PIs, " << net.outputs().size()
                  << " POs, " << net.dffs().size() << " DFFs; "
                  << gate::full_fault_list(net).size() << " faults, "
                  << collapsed << " after collapsing\n";
        std::cout << "random TPG: " << reply.done.gate_random_patterns
                  << " patterns, " << reply.done.gate_random_detected << "/"
                  << collapsed << " detected\n";
        if (reply.done.gate_atpg_ran != 0)
            std::cout << "PODEM top-up: " << reply.done.gate_atpg_detected
                      << " detected, " << reply.done.gate_atpg_untestable
                      << " untestable, " << reply.done.gate_atpg_aborted
                      << " aborted\n";
        print_perf("gate", "daemon", collapsed, reply.done.wall_s,
                   reply.done.workers);
        return finish(reply.matrix, options, 0);
    } catch (const Error& e) {
        std::cerr << "ctkgrade: " << e.what() << "\n";
        return 2;
    }
}

int run_kb_augmentation(const std::vector<std::string>& families,
                        const CommonOptions& options,
                        ctk::core::AugmentOptions aopts,
                        const StoreOptions& store_options,
                        const std::string& out_dir) {
    using namespace ctk;
    try {
        auto store = open_store(store_options);
        if (store) aopts.store = &*store;
        const auto result = core::augment_kb(aopts, families);
        if (store) close_store(*store, store_options);
        std::cout << report::render_augmentation(result, options.detail);
        if (!out_dir.empty()) {
            std::filesystem::create_directories(out_dir);
            for (const auto& family : result.families) {
                const std::string path =
                    (std::filesystem::path(out_dir) /
                     (family.family + ".xml"))
                        .string();
                std::ofstream out(path);
                if (!out) throw Error("cannot write " + path);
                out << script::to_xml_text(family.augmented);
                std::cerr << "ctkgrade: wrote " << path << "\n";
            }
        }
        // The CSV and the --min-coverage gate judge the *augmented*
        // suites — the artefact this mode ships.
        return finish(result.after(), options, result.clean() ? 0 : 3);
    } catch (const Error& e) {
        std::cerr << "ctkgrade: " << e.what() << "\n";
        return 2;
    }
}

int run_gate_grading(const std::string& spec, std::size_t budget,
                     const CommonOptions& options, bool fault_packed) {
    using namespace ctk;
    using namespace ctk::gate;
    try {
        const Netlist net = load(spec);

        GateGradeOptions gopts;
        gopts.max_patterns = budget;
        gopts.jobs = options.jobs;
        gopts.fault_packed = fault_packed;
        const auto start = std::chrono::steady_clock::now();
        const auto graded = grade_netlist(net, gopts);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();

        std::cout << net.name() << ": " << net.size() << " gates, "
                  << net.inputs().size() << " PIs, " << net.outputs().size()
                  << " POs, " << net.dffs().size() << " DFFs; "
                  << full_fault_list(net).size() << " faults, "
                  << graded.faults.size() << " after collapsing\n";
        std::cout << "random TPG: " << graded.random_patterns
                  << " patterns, " << graded.random_detected << "/"
                  << graded.faults.size() << " detected\n";
        if (!graded.atpg.per_fault.empty())
            std::cout << "PODEM top-up: " << graded.atpg.detected
                      << " detected, " << graded.atpg.untestable
                      << " untestable, " << graded.atpg.aborted
                      << " aborted\n";

        core::CoverageMatrix matrix;
        matrix.groups.push_back(graded.coverage);
        matrix.workers = parallel::resolve_workers(
            options.jobs, graded.faults.size());
        matrix.wall_s = wall;
        print_perf("gate", fault_packed ? "fault-packed" : "sharded",
                   graded.faults.size(), wall, graded.effective_workers);
        return finish(matrix, options, 0);
    } catch (const Error& e) {
        std::cerr << "ctkgrade: " << e.what() << "\n";
        return 2;
    }
}

} // namespace

int main(int argc, char** argv) {
    using namespace ctk;

    std::string spec;
    std::size_t budget = 256;
    bool budget_set = false;
    bool kb_mode = false;
    bool augment = false;
    bool aug_flag_set = false; ///< --budget/--seed seen (augment-only)
    core::AugmentOptions aug_opts;
    std::string out_dir;
    CommonOptions common;
    StoreOptions store;
    sim::UniverseOptions universe;
    bool universe_set = false;
    bool universe_scaled = false;
    std::string connect_path;
    bool lockstep = false;
    std::size_t block = 0;
    bool block_set = false;
    bool lockstep_scalar = false;
    bool fault_packed = false;
    std::vector<std::string> families;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "ctkgrade: " << arg << " needs a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--patterns") {
            const auto n = str::parse_number(next());
            if (!n || !(*n >= 1 && *n <= 1e9) || *n != std::floor(*n)) {
                std::cerr << "ctkgrade: --patterns needs an integer in "
                             "[1, 1e9]\n";
                return 1;
            }
            budget = static_cast<std::size_t>(*n);
            budget_set = true;
        } else if (arg == "--kb") {
            kb_mode = true;
        } else if (arg == "--augment") {
            augment = true;
        } else if (arg == "--budget") {
            const auto n = str::parse_number(next());
            if (!n || !(*n >= 0 && *n <= 1e6) || *n != std::floor(*n)) {
                std::cerr << "ctkgrade: --budget needs an integer in "
                             "[0, 1e6]\n";
                return 1;
            }
            aug_opts.budget = static_cast<std::size_t>(*n);
            aug_flag_set = true;
        } else if (arg == "--seed") {
            const auto n = str::parse_number(next());
            if (!n || !(*n >= 0) || *n != std::floor(*n)) {
                std::cerr << "ctkgrade: --seed needs a non-negative "
                             "integer\n";
                return 1;
            }
            aug_opts.seed = static_cast<std::uint64_t>(*n);
            aug_flag_set = true;
        } else if (arg == "--out") {
            out_dir = next();
        } else if (arg == "--store") {
            store.dir = next();
        } else if (arg == "--invalidate") {
            store.invalidate = true;
        } else if (arg == "--universe") {
            const std::string u = next();
            if (u == "base") {
                universe = sim::UniverseOptions::base();
            } else if (u == "scaled") {
                universe = sim::UniverseOptions::scaled();
                universe_scaled = true;
            } else {
                std::cerr << "ctkgrade: --universe needs 'base' or "
                             "'scaled'\n";
                return 1;
            }
            universe_set = true;
        } else if (arg == "--connect") {
            connect_path = next();
        } else if (arg == "--lockstep") {
            lockstep = true;
        } else if (arg == "--lockstep-scalar") {
            lockstep_scalar = true;
        } else if (arg == "--fault-packed") {
            fault_packed = true;
        } else if (arg == "--block") {
            const auto n = str::parse_number(next());
            if (!n || !(*n >= 1 && *n <= 1e6) || *n != std::floor(*n)) {
                std::cerr << "ctkgrade: --block needs an integer in "
                             "[1, 1e6]\n";
                return 1;
            }
            block = static_cast<std::size_t>(*n);
            block_set = true;
        } else if (arg == "--families") {
            for (const auto& f : str::split(next(), ','))
                families.push_back(std::string(str::trim(f)));
        } else if (arg == "--jobs") {
            const auto n = str::parse_number(next());
            if (!n || !(*n >= 0 && *n <= 4096) || *n != std::floor(*n)) {
                std::cerr << "ctkgrade: --jobs needs an integer in "
                             "[0, 4096]\n";
                return 1;
            }
            common.jobs = static_cast<unsigned>(*n);
        } else if (arg == "--detail") {
            common.detail = true;
        } else if (arg == "--csv") {
            common.csv_path = next();
        } else if (arg == "--min-coverage") {
            const auto x = str::parse_number(next());
            if (!x || !(*x >= 0.0 && *x <= 1.0)) {
                std::cerr << "ctkgrade: --min-coverage needs a fraction "
                             "in [0, 1]\n";
                return 1;
            }
            common.min_coverage = *x;
        } else if (arg == "-h" || arg == "--help") {
            std::cout << kUsage;
            return 0;
        } else if (spec.empty()) {
            spec = arg;
        } else {
            std::cerr << "ctkgrade: unexpected argument '" << arg << "'\n";
            return 1;
        }
    }

    if (kb_mode) {
        // Canonical family list (empty = all, duplicates collapse,
        // catalogue order) — the exact normalization the daemon applies
        // to its cache keys, so offline output for any spelling matches
        // the daemon's reply for the same set byte for byte.
        families = core::kb::canonical_families(families);
        if (!spec.empty()) {
            std::cerr << "ctkgrade: --kb cannot be combined with a "
                         "netlist\n";
            return 1;
        }
        if (budget_set) {
            std::cerr << "ctkgrade: --patterns only applies to netlist "
                         "mode\n";
            return 1;
        }
        if (!augment && (aug_flag_set || !out_dir.empty())) {
            std::cerr << "ctkgrade: --budget/--seed/--out only apply "
                         "with --augment\n";
            return 1;
        }
        if (store.invalidate && store.dir.empty()) {
            std::cerr << "ctkgrade: --invalidate needs --store DIR\n";
            return 1;
        }
        if (block_set && !lockstep) {
            std::cerr << "ctkgrade: --block needs --lockstep\n";
            return 1;
        }
        if (lockstep_scalar && !lockstep) {
            std::cerr << "ctkgrade: --lockstep-scalar needs --lockstep\n";
            return 1;
        }
        if (fault_packed) {
            std::cerr << "ctkgrade: --fault-packed only applies to "
                         "netlist mode\n";
            return 1;
        }
        if (!connect_path.empty()) {
            if (!store.dir.empty() || store.invalidate) {
                std::cerr << "ctkgrade: --store/--invalidate cannot "
                             "combine with --connect (the daemon owns "
                             "the store)\n";
                return 1;
            }
            if (augment) {
                std::cerr << "ctkgrade: --augment is not available over "
                             "--connect\n";
                return 1;
            }
            if (lockstep_scalar) {
                std::cerr << "ctkgrade: --lockstep-scalar is not "
                             "available over --connect (the daemon "
                             "always grades packed)\n";
                return 1;
            }
            return run_kb_connect(connect_path, families, common,
                                  universe_scaled, lockstep, block);
        }
        if (augment) {
            if (lockstep_scalar) {
                std::cerr << "ctkgrade: --lockstep-scalar does not "
                             "combine with --augment\n";
                return 1;
            }
            aug_opts.jobs = common.jobs;
            aug_opts.universe = universe;
            aug_opts.lockstep = lockstep;
            aug_opts.block = block;
            return run_kb_augmentation(families, common, aug_opts, store,
                                       out_dir);
        }
        return run_kb_grading(families, common, universe, store, lockstep,
                              block, lockstep_scalar);
    }
    if (!families.empty()) {
        std::cerr << "ctkgrade: --families only applies to --kb mode\n";
        return 1;
    }
    if (augment || aug_flag_set || !out_dir.empty()) {
        std::cerr << "ctkgrade: --augment/--budget/--seed/--out only "
                     "apply to --kb mode\n";
        return 1;
    }
    if (!store.dir.empty() || store.invalidate) {
        std::cerr << "ctkgrade: --store/--invalidate only apply to --kb "
                     "mode\n";
        return 1;
    }
    if (universe_set) {
        std::cerr << "ctkgrade: --universe only applies to --kb mode\n";
        return 1;
    }
    if (lockstep || block_set || lockstep_scalar) {
        std::cerr << "ctkgrade: --lockstep/--block/--lockstep-scalar "
                     "only apply to --kb mode\n";
        return 1;
    }
    if (spec.empty()) {
        std::cerr << kUsage;
        return 1;
    }
    if (!connect_path.empty())
        return run_gate_connect(connect_path, spec, budget, common,
                                fault_packed);
    return run_gate_grading(spec, budget, common, fault_packed);
}
