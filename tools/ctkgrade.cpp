// ctkgrade — fault grading for gate-level and system-level DUTs.
//
// Gate mode (the original): loads an ISCAS .bench netlist (or one of
// the built-in circuits), runs random TPG up to a pattern budget, tops
// the remainder up with PODEM, and prints the coverage breakdown.
//
// KB mode (--kb): grades the knowledge-base test suites themselves by
// system-level fault injection (DESIGN.md §8) — every family's suite is
// compiled once, run golden, then re-run against each entry of the
// family's generated fault universe (pin stuck/drift, CAN drop/corrupt,
// clock skew) on a worker pool; prints the per-family coverage table.
//
//   usage: ctkgrade <netlist.bench | builtin:NAME> [--patterns N]
//          ctkgrade --kb [--families a,b] [--jobs N] [--detail]
//                   [--csv out.csv]
//          builtin names: c17, adder8, cmp8, mux16, alu4, parity16,
//          counter4 (sequential; random only)
//
// Exit codes: 0 ok, 1 usage, 2 parse/framework error, 3 KB grading hit
// framework-error faults (or a golden run failed) — CI propagates this.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/strings.hpp"
#include "core/grading.hpp"
#include "gate/atpg.hpp"
#include "gate/bench_io.hpp"
#include "gate/circuits.hpp"
#include "gate/tpg.hpp"
#include "report/report.hpp"

namespace {

ctk::gate::Netlist load(const std::string& spec) {
    using namespace ctk::gate;
    if (spec.rfind("builtin:", 0) == 0) {
        const std::string name = spec.substr(8);
        if (name == "c17") return circuits::c17();
        if (name == "adder8") return circuits::ripple_adder(8);
        if (name == "cmp8") return circuits::comparator(8);
        if (name == "mux16") return circuits::mux_tree(4);
        if (name == "alu4") return circuits::alu(4);
        if (name == "parity16") return circuits::parity_tree(16);
        if (name == "counter4") return circuits::counter(4);
        throw ctk::Error("unknown builtin circuit '" + name + "'");
    }
    std::ifstream in(spec);
    if (!in) throw ctk::Error("cannot read " + spec);
    std::ostringstream body;
    body << in.rdbuf();
    return parse_bench(body.str(), spec);
}

const char* kUsage =
    "usage: ctkgrade <netlist.bench | builtin:NAME> [--patterns N]\n"
    "       ctkgrade --kb [--families a,b] [--jobs N] [--detail] "
    "[--csv out.csv]\n";

int run_kb_grading(const std::vector<std::string>& families, unsigned jobs,
                   bool detail, const std::string& csv_path) {
    using namespace ctk;
    try {
        core::GradingOptions opts;
        opts.jobs = jobs;
        const auto result = core::grade_kb(opts, families);
        std::cout << report::render_fault_grading(result, detail);
        if (!csv_path.empty()) {
            std::ofstream out(csv_path);
            if (!out) throw Error("cannot write " + csv_path);
            out << report::fault_grading_to_csv(result);
            std::cerr << "ctkgrade: wrote " << csv_path << "\n";
        }
        // Low coverage is information; a framework error is a defect in
        // the grading harness or the stand — that must fail CI.
        return result.clean() ? 0 : 3;
    } catch (const Error& e) {
        std::cerr << "ctkgrade: " << e.what() << "\n";
        return 2;
    }
}

} // namespace

int main(int argc, char** argv) {
    using namespace ctk;
    using namespace ctk::gate;

    std::string spec, csv_path;
    std::size_t budget = 256;
    bool kb_mode = false;
    bool detail = false;
    unsigned jobs = 0;
    std::vector<std::string> families;
    std::string kb_only_flag; ///< first KB-mode flag seen, for diagnostics
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "ctkgrade: " << arg << " needs a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--patterns") {
            const auto n = str::parse_number(next());
            if (!n || !(*n >= 1 && *n <= 1e9) || *n != std::floor(*n)) {
                std::cerr << "ctkgrade: --patterns needs an integer in "
                             "[1, 1e9]\n";
                return 1;
            }
            budget = static_cast<std::size_t>(*n);
        } else if (arg == "--kb") {
            kb_mode = true;
        } else if (arg == "--families") {
            if (kb_only_flag.empty()) kb_only_flag = arg;
            for (const auto& f : str::split(next(), ','))
                families.push_back(std::string(str::trim(f)));
        } else if (arg == "--jobs") {
            if (kb_only_flag.empty()) kb_only_flag = arg;
            const auto n = str::parse_number(next());
            if (!n || !(*n >= 0 && *n <= 4096) || *n != std::floor(*n)) {
                std::cerr << "ctkgrade: --jobs needs an integer in "
                             "[0, 4096]\n";
                return 1;
            }
            jobs = static_cast<unsigned>(*n);
        } else if (arg == "--detail") {
            if (kb_only_flag.empty()) kb_only_flag = arg;
            detail = true;
        } else if (arg == "--csv") {
            if (kb_only_flag.empty()) kb_only_flag = arg;
            csv_path = next();
        } else if (arg == "-h" || arg == "--help") {
            std::cout << kUsage;
            return 0;
        } else if (spec.empty()) {
            spec = arg;
        } else {
            std::cerr << "ctkgrade: unexpected argument '" << arg << "'\n";
            return 1;
        }
    }

    if (kb_mode) {
        if (!spec.empty()) {
            std::cerr << "ctkgrade: --kb cannot be combined with a "
                         "netlist\n";
            return 1;
        }
        return run_kb_grading(families, jobs, detail, csv_path);
    }
    if (!kb_only_flag.empty()) {
        std::cerr << "ctkgrade: " << kb_only_flag
                  << " only applies to --kb mode\n";
        return 1;
    }
    if (spec.empty()) {
        std::cerr << kUsage;
        return 1;
    }

    try {
        const Netlist net = load(spec);
        const auto faults = collapse_faults(net);
        std::cout << net.name() << ": " << net.size() << " gates, "
                  << net.inputs().size() << " PIs, " << net.outputs().size()
                  << " POs, " << net.dffs().size() << " DFFs; "
                  << full_fault_list(net).size() << " faults, "
                  << faults.size() << " after collapsing\n";

        RandomTpgOptions opts;
        opts.max_patterns = budget;
        opts.frames_per_pattern = net.is_sequential() ? 8 : 1;
        const auto rnd = random_tpg(net, faults, opts);
        std::cout << "random TPG: " << rnd.patterns.size() << " patterns, "
                  << rnd.faultsim.detected << "/" << faults.size() << " ("
                  << 100.0 * rnd.faultsim.coverage() << " %)\n";

        if (!net.is_sequential() &&
            rnd.faultsim.detected < faults.size()) {
            std::vector<Fault> rest;
            for (std::size_t i = 0; i < faults.size(); ++i)
                if (!rnd.faultsim.detected_mask[i]) rest.push_back(faults[i]);
            const auto atpg = run_atpg(net, rest);
            std::cout << "PODEM top-up: " << atpg.detected << " detected, "
                      << atpg.untestable << " untestable, " << atpg.aborted
                      << " aborted\n";
            const double total = static_cast<double>(
                rnd.faultsim.detected + atpg.detected);
            std::cout << "combined coverage: "
                      << 100.0 * total / static_cast<double>(faults.size())
                      << " %\n";
        }
        return 0;
    } catch (const Error& e) {
        std::cerr << "ctkgrade: " << e.what() << "\n";
        return 2;
    }
}
