// ctkgrade — stuck-at fault grading for gate-level DUTs.
//
// Loads an ISCAS .bench netlist (or one of the built-in circuits), runs
// random TPG up to a pattern budget, tops the remainder up with PODEM,
// and prints the coverage breakdown.
//
//   usage: ctkgrade <netlist.bench | builtin:NAME> [--patterns N]
//          builtin names: c17, adder8, cmp8, mux16, alu4, parity16,
//          counter4 (sequential; random only)
//
// Exit codes: 0 ok, 1 usage, 2 parse error.
#include <fstream>
#include <iostream>
#include <sstream>

#include "gate/atpg.hpp"
#include "gate/bench_io.hpp"
#include "gate/circuits.hpp"
#include "gate/tpg.hpp"

namespace {

ctk::gate::Netlist load(const std::string& spec) {
    using namespace ctk::gate;
    if (spec.rfind("builtin:", 0) == 0) {
        const std::string name = spec.substr(8);
        if (name == "c17") return circuits::c17();
        if (name == "adder8") return circuits::ripple_adder(8);
        if (name == "cmp8") return circuits::comparator(8);
        if (name == "mux16") return circuits::mux_tree(4);
        if (name == "alu4") return circuits::alu(4);
        if (name == "parity16") return circuits::parity_tree(16);
        if (name == "counter4") return circuits::counter(4);
        throw ctk::Error("unknown builtin circuit '" + name + "'");
    }
    std::ifstream in(spec);
    if (!in) throw ctk::Error("cannot read " + spec);
    std::ostringstream body;
    body << in.rdbuf();
    return parse_bench(body.str(), spec);
}

} // namespace

int main(int argc, char** argv) {
    using namespace ctk;
    using namespace ctk::gate;

    std::string spec;
    std::size_t budget = 256;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--patterns" && i + 1 < argc) {
            budget = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "-h" || arg == "--help") {
            std::cout << "usage: ctkgrade <netlist.bench | builtin:NAME> "
                         "[--patterns N]\n";
            return 0;
        } else if (spec.empty()) {
            spec = arg;
        } else {
            std::cerr << "ctkgrade: unexpected argument '" << arg << "'\n";
            return 1;
        }
    }
    if (spec.empty()) {
        std::cerr << "usage: ctkgrade <netlist.bench | builtin:NAME> "
                     "[--patterns N]\n";
        return 1;
    }

    try {
        const Netlist net = load(spec);
        const auto faults = collapse_faults(net);
        std::cout << net.name() << ": " << net.size() << " gates, "
                  << net.inputs().size() << " PIs, " << net.outputs().size()
                  << " POs, " << net.dffs().size() << " DFFs; "
                  << full_fault_list(net).size() << " faults, "
                  << faults.size() << " after collapsing\n";

        RandomTpgOptions opts;
        opts.max_patterns = budget;
        opts.frames_per_pattern = net.is_sequential() ? 8 : 1;
        const auto rnd = random_tpg(net, faults, opts);
        std::cout << "random TPG: " << rnd.patterns.size() << " patterns, "
                  << rnd.faultsim.detected << "/" << faults.size() << " ("
                  << 100.0 * rnd.faultsim.coverage() << " %)\n";

        if (!net.is_sequential() &&
            rnd.faultsim.detected < faults.size()) {
            std::vector<Fault> rest;
            for (std::size_t i = 0; i < faults.size(); ++i)
                if (!rnd.faultsim.detected_mask[i]) rest.push_back(faults[i]);
            const auto atpg = run_atpg(net, rest);
            std::cout << "PODEM top-up: " << atpg.detected << " detected, "
                      << atpg.untestable << " untestable, " << atpg.aborted
                      << " aborted\n";
            const double total = static_cast<double>(
                rnd.faultsim.detected + atpg.detected);
            std::cout << "combined coverage: "
                      << 100.0 * total / static_cast<double>(faults.size())
                      << " %\n";
        }
        return 0;
    } catch (const Error& e) {
        std::cerr << "ctkgrade: " << e.what() << "\n";
        return 2;
    }
}
