// LatencyBackend tests: per-op delay accounting against the decorator's
// deterministic counters, decorator transparency (fingerprints equal to
// the undecorated backend on both execution paths), and batch-readout
// economics (one measure gate per measure_batch call).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/kb.hpp"
#include "core/plan.hpp"
#include "dut/catalogue.hpp"
#include "sim/latency.hpp"
#include "sim/virtual_stand.hpp"

namespace ctk::sim {
namespace {

const model::MethodRegistry kReg = model::MethodRegistry::builtin();

std::shared_ptr<VirtualStand> inner_stand(const std::string& family,
                                          const stand::StandDescription& d) {
    return std::make_shared<VirtualStand>(d, dut::make_golden(family));
}

std::string family_fingerprint(const std::string& family,
                               StandBackend& backend,
                               core::PlanPath path) {
    const auto script = script::compile(core::kb::suite_for(family), kReg);
    const auto desc = core::kb::stand_for(family);
    const auto plan = core::CompiledPlan::compile(script, desc);
    core::CampaignJobResult job;
    job.name = family;
    job.run = plan.execute(backend, path);
    return core::verdict_fingerprint(job);
}

TEST(Latency, NeedsAnInnerBackend) {
    EXPECT_THROW(LatencyBackend(nullptr, LatencyOptions{}), Error);
}

TEST(Latency, CountsEveryOperationOfARun) {
    const std::string family = "wiper";
    const auto desc = core::kb::stand_for(family);
    LatencyBackend backend(inner_stand(family, desc), LatencyOptions{});

    const auto print =
        family_fingerprint(family, backend, core::PlanPath::Handles);
    EXPECT_NE(print.find("PASS"), std::string::npos) << print;

    const LatencyCounts& c = backend.counts();
    EXPECT_GE(c.resets, 1u);
    EXPECT_GE(c.prepares, 1u);
    EXPECT_GT(c.advances, 0u);
    EXPECT_GT(c.applies, 0u);
    EXPECT_GT(c.batch_calls, 0u);
    EXPECT_GE(c.batch_channels, c.batch_calls);
    // The handle path never measures one channel at a time during the
    // dwell; only bits checks use measure_bits at the end of a step.
    EXPECT_LT(c.measures, c.batch_channels);
}

TEST(Latency, EmulatedWallClockIsTheCountLedger) {
    // The accounting contract: emulated_wall_s() is exactly the per-op
    // delay arithmetic over the counters — testable without touching the
    // real (flaky) clock.
    const std::string family = "turn_signal";
    const auto desc = core::kb::stand_for(family);
    LatencyOptions lat;
    lat.advance_s = 3e-6;
    lat.apply_s = 5e-6;
    lat.measure_s = 7e-6;
    LatencyBackend backend(inner_stand(family, desc), lat);

    (void)family_fingerprint(family, backend, core::PlanPath::Handles);

    const LatencyCounts& c = backend.counts();
    const double expected =
        static_cast<double>(c.advances) * lat.advance_s +
        static_cast<double>(c.applies) * lat.apply_s +
        static_cast<double>(c.measures + c.batch_calls) * lat.measure_s;
    EXPECT_NEAR(backend.emulated_wall_s(), expected, 1e-12);
    EXPECT_GT(backend.emulated_wall_s(), 0.0);
}

TEST(Latency, StringPathPaysPerSampleBatchPathPerTick) {
    // Same plan, same delays: the string path holds the measure gate
    // once per (check, tick) while the batch path holds it once per
    // tick — the batch economics the decorator models.
    const std::string family = "power_window";
    const auto desc = core::kb::stand_for(family);

    LatencyBackend strings(inner_stand(family, desc), LatencyOptions{});
    const auto a =
        family_fingerprint(family, strings, core::PlanPath::Strings);
    LatencyBackend handles(inner_stand(family, desc), LatencyOptions{});
    const auto b =
        family_fingerprint(family, handles, core::PlanPath::Handles);

    EXPECT_EQ(a, b);
    EXPECT_EQ(strings.counts().batch_calls, 0u);
    EXPECT_GT(strings.counts().measures, handles.counts().measures);
    EXPECT_GT(handles.counts().batch_calls, 0u);
    // Identical sample traffic, just packaged differently.
    EXPECT_EQ(strings.counts().measures - handles.counts().measures,
              handles.counts().batch_channels);
    EXPECT_LT(handles.counts().batch_calls, handles.counts().batch_channels);
}

TEST(Latency, DecoratorIsTransparentToVerdicts) {
    // Fingerprints through the decorator equal the undecorated backend,
    // whatever the delays, on both execution paths.
    LatencyOptions lat;
    lat.advance_s = 2e-6;
    lat.apply_s = 1e-6;
    lat.measure_s = 1e-6;
    for (const auto& family : core::kb::families()) {
        const auto desc = core::kb::stand_for(family);
        for (core::PlanPath path :
             {core::PlanPath::Strings, core::PlanPath::Handles}) {
            auto bare = inner_stand(family, desc);
            const auto undecorated =
                family_fingerprint(family, *bare, path);
            LatencyBackend decorated(inner_stand(family, desc), lat);
            EXPECT_EQ(family_fingerprint(family, decorated, path),
                      undecorated)
                << family;
        }
    }
}

TEST(Latency, SleepsAtLeastTheRequestedDelay) {
    // sleep_for guarantees "at least": a loose lower bound is the only
    // wall-clock assertion that cannot flake.
    LatencyOptions lat;
    lat.advance_s = 1e-3;
    const auto desc = core::kb::stand_for("wiper");
    LatencyBackend backend(inner_stand("wiper", desc), lat);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 5; ++i) backend.advance(0.01);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_GE(elapsed, 0.9 * backend.emulated_wall_s());
    EXPECT_NEAR(backend.emulated_wall_s(), 5e-3, 1e-12);
}

TEST(Latency, ResolveIsPassThroughToTheInnerBackend) {
    // Ids issued through the decorator must drive the inner backend's
    // native channels: resolve via the decorator, measure via the inner
    // backend directly, and vice versa.
    const auto desc = core::kb::stand_for("interior_light");
    auto inner = inner_stand("interior_light", desc);
    LatencyBackend decorated(inner, LatencyOptions{});

    const std::vector<std::string> pins{"int_ill_f", "int_ill_r"};
    const ChannelId via_decorator =
        decorated.resolve("Ress1", "get_u", pins);
    // Re-resolving the same triple — through the decorator or on the
    // inner backend directly — dedupes to the same id.
    const ChannelId via_inner = inner->resolve("Ress1", "get_u", pins);
    EXPECT_EQ(via_decorator, via_inner);
    EXPECT_EQ(decorated.resolve("Ress1", "get_u", pins), via_decorator);

    double from_decorator = -1.0, from_inner = -1.0;
    decorated.measure_batch(&via_decorator, 1, &from_decorator);
    inner->measure_batch(&via_decorator, 1, &from_inner);
    EXPECT_EQ(from_decorator, from_inner);
}

} // namespace
} // namespace ctk::sim
