// Unit tests: compilation to test scripts and XML round-trips.
#include <gtest/gtest.h>

#include "core/kb.hpp"
#include "model/paper.hpp"
#include "script/xml_io.hpp"

namespace ctk::script {
namespace {

const model::MethodRegistry kReg = model::MethodRegistry::builtin();

TestScript compile_paper() { return compile(model::paper::suite(), kReg); }

TEST(Compile, ScriptStructureMirrorsSuite) {
    const TestScript s = compile_paper();
    EXPECT_EQ(s.name, "paper_int_ill");
    EXPECT_EQ(s.signals.size(), 7u);
    ASSERT_EQ(s.tests.size(), 1u);
    EXPECT_EQ(s.tests[0].steps.size(), 10u);
    // init: every input signal with an initial status (6 of 7).
    EXPECT_EQ(s.init.size(), 6u);
}

TEST(Compile, SignalNamesAreLowercased) {
    const TestScript s = compile_paper();
    EXPECT_NE(s.find_signal("int_ill"), nullptr);
    EXPECT_EQ(s.require_signal("int_ill").pins,
              (std::vector<std::string>{"int_ill_f", "int_ill_r"}));
    EXPECT_EQ(s.require_signal("int_ill").direction,
              model::SignalDirection::Output);
    EXPECT_THROW((void)s.require_signal("ghost"), SemanticError);
}

TEST(Compile, HoLimitsBecomeUbattExpressions) {
    const TestScript s = compile_paper();
    // step 4 assigns Ho to int_ill.
    const ScriptStep& step4 = s.tests[0].steps[4];
    const SignalAction* ho = nullptr;
    for (const auto& a : step4.actions)
        if (a.signal == "int_ill") ho = &a;
    ASSERT_NE(ho, nullptr);
    EXPECT_EQ(ho->call.method, "get_u");
    EXPECT_EQ(ho->call.min->to_string(), "(0.7*ubatt)");
    EXPECT_EQ(ho->call.max->to_string(), "(1.1*ubatt)");
    EXPECT_EQ(ho->call.variables(), (std::set<std::string>{"ubatt"}));
}

TEST(Compile, RequiredVariablesCollected) {
    const TestScript s = compile_paper();
    EXPECT_EQ(s.required_variables(), (std::set<std::string>{"ubatt"}));
}

TEST(Compile, InvalidSuiteRejected) {
    model::TestSuite bad = model::paper::suite();
    bad.tests[0].steps[0].assignments.push_back({"INT_ILL", "Open"});
    EXPECT_THROW((void)compile(bad, kReg), SemanticError);
}

TEST(XmlIo, ReproducesPaperListing) {
    // The exact §3 fragment: <signal name="int_ill">
    //   <get_u u_max="(1.1*ubatt)" u_min="(0.7*ubatt)" />
    const TestScript s = compile_paper();
    const std::string text = to_xml_text(s);
    EXPECT_NE(text.find("<signal name=\"int_ill\""), std::string::npos);
    EXPECT_NE(
        text.find("<get_u u_max=\"(1.1*ubatt)\" u_min=\"(0.7*ubatt)\" />"),
        std::string::npos)
        << text;
}

TEST(XmlIo, RoundTripPreservesEverything) {
    const TestScript s = compile_paper();
    const TestScript back = from_xml_text(to_xml_text(s), kReg);

    EXPECT_EQ(back.name, s.name);
    ASSERT_EQ(back.signals.size(), s.signals.size());
    for (std::size_t i = 0; i < s.signals.size(); ++i) {
        EXPECT_EQ(back.signals[i].name, s.signals[i].name);
        EXPECT_EQ(back.signals[i].direction, s.signals[i].direction);
        EXPECT_EQ(back.signals[i].kind, s.signals[i].kind);
        EXPECT_EQ(back.signals[i].pins, s.signals[i].pins);
    }
    ASSERT_EQ(back.init.size(), s.init.size());
    ASSERT_EQ(back.tests.size(), s.tests.size());
    const ScriptTest& bt = back.tests[0];
    const ScriptTest& st = s.tests[0];
    ASSERT_EQ(bt.steps.size(), st.steps.size());
    for (std::size_t i = 0; i < st.steps.size(); ++i) {
        EXPECT_EQ(bt.steps[i].nr, st.steps[i].nr);
        EXPECT_DOUBLE_EQ(bt.steps[i].dt, st.steps[i].dt);
        EXPECT_EQ(bt.steps[i].remark, st.steps[i].remark);
        ASSERT_EQ(bt.steps[i].actions.size(), st.steps[i].actions.size());
        for (std::size_t j = 0; j < st.steps[i].actions.size(); ++j) {
            const auto& a = bt.steps[i].actions[j];
            const auto& b = st.steps[i].actions[j];
            EXPECT_EQ(a.signal, b.signal);
            EXPECT_EQ(a.status, b.status);
            EXPECT_EQ(a.call.method, b.call.method);
            EXPECT_EQ(a.call.data, b.call.data);
            auto text = [](const expr::ExprPtr& e) {
                return e ? e->to_string() : std::string{};
            };
            EXPECT_EQ(text(a.call.min), text(b.call.min));
            EXPECT_EQ(text(a.call.max), text(b.call.max));
            EXPECT_EQ(text(a.call.value), text(b.call.value));
        }
    }
    // Second generation must be byte-identical (canonical form).
    EXPECT_EQ(to_xml_text(back), to_xml_text(s));
}

TEST(XmlIo, DParametersRoundTrip) {
    model::TestSuite suite = model::paper::suite();
    // Rebuild the status table with a settle/debounce/timeout on Ho.
    model::StatusTable timed;
    for (model::StatusDef st : suite.statuses.statuses()) {
        if (st.name == "Ho") {
            st.d1 = 0.1;
            st.d2 = 0.2;
            st.d3 = 0.4;
        }
        timed.add(std::move(st));
    }
    suite.statuses = std::move(timed);
    const TestScript s = compile(suite, kReg);
    const std::string text = to_xml_text(s);
    EXPECT_NE(text.find("d1=\"0.1\""), std::string::npos);
    const TestScript back = from_xml_text(text, kReg);
    const auto& actions = back.tests[0].steps[4].actions;
    const auto it = std::find_if(actions.begin(), actions.end(),
                                 [](const SignalAction& a) {
                                     return a.signal == "int_ill";
                                 });
    ASSERT_NE(it, actions.end());
    EXPECT_DOUBLE_EQ(*it->call.d1, 0.1);
    EXPECT_DOUBLE_EQ(*it->call.d2, 0.2);
    EXPECT_DOUBLE_EQ(*it->call.d3, 0.4);
}

struct BadScriptCase {
    const char* name;
    const char* xml;
};

class XmlIoErrors : public ::testing::TestWithParam<BadScriptCase> {};

TEST_P(XmlIoErrors, Throws) {
    EXPECT_THROW((void)from_xml_text(GetParam().xml, kReg), Error)
        << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlIoErrors,
    ::testing::Values(
        BadScriptCase{"wrong_root", "<nope/>"},
        BadScriptCase{"no_tests", "<testscript name=\"x\"/>"},
        BadScriptCase{"step_without_nr",
                      "<testscript><test name=\"t\"><step dt=\"1\"/></test>"
                      "</testscript>"},
        BadScriptCase{"step_without_dt",
                      "<testscript><test name=\"t\"><step nr=\"0\"/></test>"
                      "</testscript>"},
        BadScriptCase{"negative_dt",
                      "<testscript><test name=\"t\"><step nr=\"0\" "
                      "dt=\"-1\"/></test></testscript>"},
        BadScriptCase{"unknown_method",
                      "<testscript><test name=\"t\"><step nr=\"0\" dt=\"1\">"
                      "<signal name=\"s\"><frob x=\"1\"/></signal></step>"
                      "</test></testscript>"},
        BadScriptCase{"get_without_limits",
                      "<testscript><test name=\"t\"><step nr=\"0\" dt=\"1\">"
                      "<signal name=\"s\"><get_u/></signal></step>"
                      "</test></testscript>"},
        BadScriptCase{"put_without_value",
                      "<testscript><test name=\"t\"><step nr=\"0\" dt=\"1\">"
                      "<signal name=\"s\"><put_r/></signal></step>"
                      "</test></testscript>"},
        BadScriptCase{"two_methods_per_signal",
                      "<testscript><test name=\"t\"><step nr=\"0\" dt=\"1\">"
                      "<signal name=\"s\"><put_r r=\"1\"/><put_r r=\"2\"/>"
                      "</signal></step></test></testscript>"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(XmlIo, MinimalHandwrittenScriptLoads) {
    // A supplier could write this by hand — no init, default pins.
    const char* text =
        "<testscript name=\"mini\">"
        "  <signals>"
        "    <signal name=\"in1\" direction=\"in\" kind=\"pin\"/>"
        "    <signal name=\"out1\" direction=\"out\" kind=\"pin\"/>"
        "  </signals>"
        "  <test name=\"t\">"
        "    <step nr=\"0\" dt=\"0.5\">"
        "      <signal name=\"in1\"><put_r r=\"100\"/></signal>"
        "      <signal name=\"out1\"><get_u u_max=\"5\" u_min=\"1\"/></signal>"
        "    </step>"
        "  </test>"
        "</testscript>";
    const TestScript s = from_xml_text(text, kReg);
    EXPECT_EQ(s.require_signal("in1").pins,
              (std::vector<std::string>{"in1"}));
    EXPECT_TRUE(s.required_variables().empty());
    const auto& call = s.tests[0].steps[0].actions[0].call;
    EXPECT_DOUBLE_EQ(call.value->eval(expr::Env{}), 100.0);
}

// ---------------------------------------------------------------------------
// Golden round-trips over the whole knowledge base: compile every builtin
// family to XML, parse it back, and require full structural equality —
// script serialisation must not drift silently for *any* shipped suite.
// ---------------------------------------------------------------------------

std::string expr_text(const expr::ExprPtr& e) {
    return e ? e->to_string() : std::string{};
}

void expect_action_equal(const SignalAction& got, const SignalAction& want,
                         const std::string& where) {
    EXPECT_EQ(got.signal, want.signal) << where;
    EXPECT_EQ(got.status, want.status) << where;
    EXPECT_EQ(got.call.method, want.call.method) << where;
    EXPECT_EQ(got.call.kind, want.call.kind) << where;
    EXPECT_EQ(got.call.attribute, want.call.attribute) << where;
    EXPECT_EQ(got.call.data, want.call.data) << where;
    EXPECT_EQ(expr_text(got.call.value), expr_text(want.call.value)) << where;
    EXPECT_EQ(expr_text(got.call.min), expr_text(want.call.min)) << where;
    EXPECT_EQ(expr_text(got.call.max), expr_text(want.call.max)) << where;
    EXPECT_EQ(got.call.d1, want.call.d1) << where;
    EXPECT_EQ(got.call.d2, want.call.d2) << where;
    EXPECT_EQ(got.call.d3, want.call.d3) << where;
}

void expect_script_equal(const TestScript& got, const TestScript& want) {
    EXPECT_EQ(got.name, want.name);
    ASSERT_EQ(got.signals.size(), want.signals.size());
    for (std::size_t i = 0; i < want.signals.size(); ++i) {
        EXPECT_EQ(got.signals[i].name, want.signals[i].name);
        EXPECT_EQ(got.signals[i].direction, want.signals[i].direction);
        EXPECT_EQ(got.signals[i].kind, want.signals[i].kind);
        EXPECT_EQ(got.signals[i].pins, want.signals[i].pins);
    }
    ASSERT_EQ(got.init.size(), want.init.size());
    for (std::size_t i = 0; i < want.init.size(); ++i)
        expect_action_equal(got.init[i], want.init[i],
                            "init[" + std::to_string(i) + "]");
    ASSERT_EQ(got.tests.size(), want.tests.size());
    for (std::size_t t = 0; t < want.tests.size(); ++t) {
        EXPECT_EQ(got.tests[t].name, want.tests[t].name);
        ASSERT_EQ(got.tests[t].steps.size(), want.tests[t].steps.size());
        for (std::size_t s = 0; s < want.tests[t].steps.size(); ++s) {
            const ScriptStep& gs = got.tests[t].steps[s];
            const ScriptStep& ws = want.tests[t].steps[s];
            const std::string where = want.tests[t].name + "/step" +
                                      std::to_string(ws.nr);
            EXPECT_EQ(gs.nr, ws.nr) << where;
            EXPECT_DOUBLE_EQ(gs.dt, ws.dt) << where;
            EXPECT_EQ(gs.remark, ws.remark) << where;
            ASSERT_EQ(gs.actions.size(), ws.actions.size()) << where;
            for (std::size_t a = 0; a < ws.actions.size(); ++a)
                expect_action_equal(gs.actions[a], ws.actions[a], where);
        }
    }
}

class KbGoldenRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(KbGoldenRoundTrip, CompileSerialiseParseIsIdentity) {
    const TestScript original =
        compile(core::kb::suite_for(GetParam()), kReg);
    const std::string first_xml = to_xml_text(original);
    const TestScript back = from_xml_text(first_xml, kReg);
    expect_script_equal(back, original);
    // Canonical form: a second generation is byte-identical.
    EXPECT_EQ(to_xml_text(back), first_xml);
}

INSTANTIATE_TEST_SUITE_P(KnowledgeBase, KbGoldenRoundTrip,
                         ::testing::ValuesIn(core::kb::families()),
                         [](const auto& info) { return info.param; });

TEST(KbGoldenRoundTrip, EnrichedInteriorLightSuiteRoundTrips) {
    const TestScript original =
        compile(core::kb::enriched_interior_light_suite(), kReg);
    const std::string text = to_xml_text(original);
    const TestScript back = from_xml_text(text, kReg);
    expect_script_equal(back, original);
    EXPECT_EQ(to_xml_text(back), text);
}

} // namespace
} // namespace ctk::script
