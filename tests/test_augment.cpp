// Suite-augmentation tests: fixpoint determinism (same seed =>
// byte-identical augmented XML), golden preservation (augmented suites
// pass the clean DUT), worker-count independence, budget-exhaustion
// handling, untestable certificates, and XML round-trips of the
// synthesized tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/augment.hpp"
#include "core/kb.hpp"
#include "core/plan.hpp"
#include "dut/catalogue.hpp"
#include "script/xml_io.hpp"
#include "sim/virtual_stand.hpp"

namespace ctk::core {
namespace {

const model::MethodRegistry kReg = model::MethodRegistry::builtin();

AugmentationResult augment(unsigned jobs,
                           const std::vector<std::string>& families = {},
                           std::size_t budget = 200,
                           std::uint64_t seed = 0xc7b5eedULL) {
    AugmentOptions opts;
    opts.jobs = jobs;
    opts.budget = budget;
    opts.seed = seed;
    return augment_kb(opts, families);
}

/// The full-KB augmentation is the expensive fixture half the suite
/// asserts against — run it once.
const AugmentationResult& kb_augmentation() {
    static const AugmentationResult result = augment(4);
    return result;
}

TEST(Augment, LiftsKbCoverageToTheFloorWithNoOpenFaults) {
    const auto& result = kb_augmentation();
    EXPECT_TRUE(result.clean());
    ASSERT_EQ(result.families.size(), kb::families().size());

    const CoverageMatrix before = result.before();
    const CoverageMatrix after = result.after();
    ASSERT_TRUE(before.coverage().has_value());
    ASSERT_TRUE(after.coverage().has_value());
    // The motivating numbers: 59.38 % at the seed of this PR, >= 90 %
    // after augmentation — the floor CI enforces.
    EXPECT_NEAR(*before.coverage(), 0.5938, 0.0001);
    EXPECT_GE(*after.coverage(), 0.9);
    EXPECT_EQ(after.undetected(), 0u);
    EXPECT_EQ(after.framework_errors(), 0u);

    for (const auto& family : result.families) {
        EXPECT_FALSE(family.golden_error) << family.family;
        for (const auto& f : family.faults)
            EXPECT_TRUE(f.outcome != AugmentOutcome::BudgetExhausted &&
                        f.outcome != AugmentOutcome::NoCandidateDetects &&
                        f.outcome != AugmentOutcome::FrameworkError)
                << family.family << "/" << f.fault.id() << ": "
                << augment_outcome_name(f.outcome);
    }
}

TEST(Augment, FixpointIsDeterministicForTheSameSeed) {
    const auto& first = kb_augmentation();
    const auto second = augment(4);
    EXPECT_EQ(augmentation_fingerprint(first),
              augmentation_fingerprint(second));
    ASSERT_EQ(first.families.size(), second.families.size());
    for (std::size_t i = 0; i < first.families.size(); ++i) {
        // Byte-identical augmented XML — the artefact --out ships.
        EXPECT_EQ(script::to_xml_text(first.families[i].augmented),
                  script::to_xml_text(second.families[i].augmented))
            << first.families[i].family;
    }
}

TEST(Augment, WorkerCountDoesNotChangeTheAugmentation) {
    const auto one = augment(1, {"wiper", "central_lock"});
    const auto eight = augment(8, {"wiper", "central_lock"});
    EXPECT_EQ(augmentation_fingerprint(one),
              augmentation_fingerprint(eight));
    ASSERT_EQ(one.families.size(), 2u);
    ASSERT_EQ(eight.families.size(), 2u);
    for (std::size_t i = 0; i < one.families.size(); ++i) {
        EXPECT_EQ(script::to_xml_text(one.families[i].augmented),
                  script::to_xml_text(eight.families[i].augmented));
        EXPECT_EQ(one.families[i].candidate_runs,
                  eight.families[i].candidate_runs);
    }
}

TEST(Augment, AugmentedSuitesPassTheCleanDut) {
    // No golden regression, end to end: every augmented script, bound
    // fresh to its reference stand, passes on an undecorated golden
    // device.
    for (const auto& family : kb_augmentation().families) {
        const auto plan = CompiledPlan::compile(
            family.augmented, kb::stand_for(family.family), RunOptions{});
        sim::VirtualStand backend(kb::stand_for(family.family),
                                  dut::make_golden(family.family));
        const RunResult run = plan.execute(backend);
        EXPECT_TRUE(run.passed()) << family.family;
        EXPECT_EQ(run.tests.size(), family.augmented.tests.size());
    }
}

TEST(Augment, SynthesizedScriptsRoundTripThroughXml) {
    for (const auto& family : kb_augmentation().families) {
        ASSERT_FALSE(family.added.empty()) << family.family;
        const std::string xml = script::to_xml_text(family.augmented);
        const script::TestScript parsed =
            script::from_xml_text(xml, kReg, family.family + ".xml");
        // Serialisation is idempotent through a parse cycle...
        EXPECT_EQ(script::to_xml_text(parsed), xml) << family.family;
        ASSERT_EQ(parsed.tests.size(), family.augmented.tests.size());
        // ...and the re-parsed script executes to the same verdicts.
        const auto desc = kb::stand_for(family.family);
        const auto plan = CompiledPlan::compile(parsed, desc, RunOptions{});
        sim::VirtualStand backend(desc, dut::make_golden(family.family));
        EXPECT_TRUE(plan.execute(backend).passed()) << family.family;
    }
}

TEST(Augment, RegradeOfAugmentedSuiteAgreesWithReportedAfterGroup) {
    // The 'after' group must be reproducible by an independent grading
    // of the exported suite (untestable entries map back to undetected,
    // which is exactly what the certificate re-classifies).
    const auto& family = kb_augmentation().families[1]; // wiper
    ASSERT_EQ(family.family, "wiper");

    auto setup = kb_grading_setup("wiper");
    setup.script = family.augmented;
    setup.plan.reset();
    GradingOptions gopts;
    gopts.jobs = 2;
    GradingCampaign grading(gopts);
    grading.add(std::move(setup));
    const auto regrade = grading.run_all();
    ASSERT_EQ(regrade.families.size(), 1u);
    const CoverageGroup fresh = regrade.families[0].coverage_group();

    ASSERT_EQ(fresh.entries.size(), family.after.entries.size());
    for (std::size_t i = 0; i < fresh.entries.size(); ++i) {
        const FaultOutcome want =
            family.after.entries[i].outcome == FaultOutcome::Untestable
                ? FaultOutcome::Undetected
                : family.after.entries[i].outcome;
        EXPECT_EQ(fresh.entries[i].outcome, want)
            << fresh.entries[i].id;
    }
}

TEST(Augment, BudgetZeroDisablesTheSearchButKeepsCertificates) {
    const auto result = augment(2, {"wiper"}, /*budget=*/0);
    ASSERT_EQ(result.families.size(), 1u);
    const auto& family = result.families[0];

    // Nothing synthesized, the script is untouched...
    EXPECT_TRUE(family.added.empty());
    EXPECT_EQ(script::to_xml_text(family.augmented),
              script::to_xml_text(
                  script::compile(kb::suite_for("wiper"), kReg)));
    // ...the drift blind spots are explicitly budget-exhausted...
    std::size_t exhausted = 0;
    for (const auto& f : family.faults)
        if (f.outcome == AugmentOutcome::BudgetExhausted) {
            ++exhausted;
            EXPECT_EQ(f.candidates_tried, 0u) << f.fault.id();
        }
    EXPECT_GT(exhausted, 0u);
    // ...and the after coverage equals the before coverage (wiper has
    // no untestable faults to reclassify).
    EXPECT_EQ(family.after.coverage(), family.before.coverage());
}

TEST(Augment, SmallBudgetStopsAtTheBudgetNotTheCandidateSpace) {
    // central_lock's clock skews need probe candidates that sit beyond
    // the first few tighten sites; a budget of 4 must stop there and
    // say so. The budget is per fault and per round (AugmentOptions),
    // and the default fixpoint allows max_rounds = 3 of them.
    const auto result = augment(2, {"central_lock"}, /*budget=*/4);
    ASSERT_EQ(result.families.size(), 1u);
    bool saw_exhausted = false;
    for (const auto& f : result.families[0].faults) {
        EXPECT_LE(f.candidates_tried, 4u * 3u) << f.fault.id();
        if (f.outcome == AugmentOutcome::BudgetExhausted) {
            saw_exhausted = true;
            EXPECT_EQ(f.candidates_tried % 4u, 0u) << f.fault.id();
        }
    }
    EXPECT_TRUE(saw_exhausted);
}

TEST(Augment, UntestableCertificatesNameTheBound) {
    // The stand-unobservable faults (a frequency counter cannot see
    // lamp drift; the interior light ignores ign_st; int_ill_r is a
    // 0 V return line) are certified bounded-equivalent, not counted
    // as misses — and the certificate says what was explored.
    const std::vector<std::pair<std::string, std::string>> expected{
        {"interior_light", "stuck_low@int_ill_r"},
        {"interior_light", "scale@int_ill_r*0.8"},
        {"interior_light", "can_drop@ign_st"},
        {"interior_light", "can_corrupt@ign_st"},
        {"turn_signal", "offset@lamp_l+0.8"},
        {"turn_signal", "scale@lamp_l*0.8"},
        {"turn_signal", "offset@lamp_r+0.8"},
        {"turn_signal", "scale@lamp_r*0.8"},
    };
    std::vector<std::pair<std::string, std::string>> untestable;
    for (const auto& family : kb_augmentation().families)
        for (const auto& f : family.faults)
            if (f.outcome == AugmentOutcome::Untestable) {
                untestable.emplace_back(family.family, f.fault.id());
                EXPECT_NE(f.note.find("bounded-equivalent"),
                          std::string::npos)
                    << f.fault.id();
            }
    EXPECT_EQ(untestable, expected);
}

TEST(Augment, GoldenErrorIsIsolatedPerFamily) {
    auto broken = kb_grading_setup("wiper");
    broken.stand = stand::StandDescription("empty-stand");
    broken.plan.reset();

    AugmentOptions opts;
    opts.jobs = 2;
    SuiteAugmenter augmenter(opts);
    augmenter.add(std::move(broken));
    augmenter.add(kb_grading_setup("turn_signal"));
    const auto result = augmenter.run_all();

    ASSERT_EQ(result.families.size(), 2u);
    EXPECT_TRUE(result.families[0].golden_error);
    EXPECT_FALSE(result.families[0].golden_message.empty());
    for (const auto& f : result.families[0].faults)
        EXPECT_EQ(f.outcome, AugmentOutcome::FrameworkError);
    EXPECT_FALSE(result.clean());

    EXPECT_FALSE(result.families[1].golden_error);
    EXPECT_FALSE(result.families[1].added.empty());
}

TEST(Augment, SynthesizedTestNamesAreUniqueAndTraceable) {
    for (const auto& family : kb_augmentation().families) {
        std::map<std::string, std::size_t> names;
        for (const auto& test : family.augmented.tests)
            ++names[test.name];
        for (const auto& [name, count] : names)
            EXPECT_EQ(count, 1u) << family.family << "/" << name;
        for (const auto& added : family.added) {
            EXPECT_EQ(added.name.rfind("aug_", 0), 0u) << added.name;
            EXPECT_FALSE(added.fault_id.empty());
            EXPECT_FALSE(added.origin.empty());
            EXPECT_TRUE(added.kind == "tighten" || added.kind == "probe")
                << added.kind;
            // Every added test exists in the augmented script.
            EXPECT_TRUE(std::any_of(
                family.augmented.tests.begin(),
                family.augmented.tests.end(),
                [&](const script::ScriptTest& t) {
                    return t.name == added.name;
                }))
                << added.name;
        }
    }
}

TEST(Augment, UnknownFamilyThrowsSemanticError) {
    AugmentOptions opts;
    SuiteAugmenter augmenter(opts);
    EXPECT_THROW(augmenter.add_kb_family("toaster"), SemanticError);
}

TEST(Augment, EveryClosureIsAttributedToAnExistingTest) {
    for (const auto& family : kb_augmentation().families)
        for (const auto& f : family.faults) {
            if (f.outcome != AugmentOutcome::ClosedByNewTest &&
                f.outcome != AugmentOutcome::ClosedByEarlierTest)
                continue;
            EXPECT_TRUE(std::any_of(
                family.augmented.tests.begin(),
                family.augmented.tests.end(),
                [&](const script::ScriptTest& t) {
                    return t.name == f.test_name;
                }))
                << family.family << "/" << f.fault.id() << " -> "
                << f.test_name;
        }
}

} // namespace
} // namespace ctk::core
