// Unit tests: time-frame expansion and sequential ATPG.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gate/circuits.hpp"
#include "gate/tpg.hpp"
#include "gate/unroll.hpp"

namespace ctk::gate {
namespace {

TEST(Unroll, RejectsCombinationalAndZeroFrames) {
    EXPECT_THROW((void)unroll(circuits::c17(), 4), SemanticError);
    EXPECT_THROW((void)unroll(circuits::counter(2), 0), SemanticError);
}

TEST(Unroll, StructureHasPlannedShape) {
    const Netlist n = circuits::counter(3);
    const Unrolled u = unroll(n, 5);
    EXPECT_FALSE(u.net.is_sequential());
    EXPECT_EQ(u.net.size(), 5 * n.size());
    EXPECT_EQ(u.net.inputs().size(), 5 * n.inputs().size());
    EXPECT_EQ(u.net.outputs().size(), 5 * n.outputs().size());
    // Frame-0 DFF copies are reset constants.
    for (GateId d : n.dffs())
        EXPECT_EQ(u.net.gate(u.copy(0, d)).type, GateType::Const0);
    // Frame-k DFF copies buffer the previous frame's next-state net.
    for (GateId d : n.dffs()) {
        const Gate& copy = u.net.gate(u.copy(3, d));
        EXPECT_EQ(copy.type, GateType::Buf);
        EXPECT_EQ(copy.fanins[0], u.copy(2, n.gate(d).fanins[0]));
    }
}

TEST(Unroll, UnrolledSimulationMatchesSequentialSimulation) {
    const Netlist n = circuits::counter(4);
    const std::size_t frames = 7;
    const Unrolled u = unroll(n, frames);
    const LogicSim seq(n);
    const LogicSim comb(u.net);

    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        // Random enable sequence.
        std::vector<bool> en(frames);
        for (auto&& e : en) e = rng.next_bool();

        // Sequential reference.
        std::vector<std::vector<bool>> seq_outputs;
        std::vector<PackedWord> state(n.dffs().size(), 0);
        for (std::size_t f = 0; f < frames; ++f) {
            const std::vector<PackedWord> in{
                en[f] ? ~PackedWord{0} : PackedWord{0}};
            const auto values = seq.eval(in, state);
            std::vector<bool> outs;
            for (GateId po : n.outputs())
                outs.push_back(
                    (values[static_cast<std::size_t>(po)] & 1u) != 0);
            seq_outputs.push_back(outs);
            state = seq.next_state(values);
        }

        // Unrolled evaluation of the same sequence.
        std::vector<bool> flat;
        for (std::size_t f = 0; f < frames; ++f) flat.push_back(en[f]);
        const auto comb_out = comb.eval_scalar(flat);
        std::size_t k = 0;
        for (std::size_t f = 0; f < frames; ++f)
            for (std::size_t o = 0; o < n.outputs().size(); ++o, ++k)
                EXPECT_EQ(comb_out[k], seq_outputs[f][o])
                    << "trial " << trial << " frame " << f;
    }
}

TEST(Unroll, MapFaultCoversEveryFrame) {
    const Netlist n = circuits::counter(2);
    const Unrolled u = unroll(n, 4);
    const Fault f{n.require("t1"), -1, false};
    const auto copies = map_fault(u, f);
    ASSERT_EQ(copies.size(), 4u);
    for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_EQ(copies[k].gate, u.copy(k, f.gate));
        EXPECT_EQ(copies[k].sa1, f.sa1);
    }
}

TEST(Unroll, FoldPatternSplitsFrames) {
    const Netlist n = circuits::counter(2);
    const Unrolled u = unroll(n, 3);
    Pattern flat = Pattern::single({true, false, true});
    const Pattern seq = fold_pattern(u, flat);
    ASSERT_EQ(seq.frames.size(), 3u);
    EXPECT_EQ(seq.frames[0], std::vector<bool>{true});
    EXPECT_EQ(seq.frames[1], std::vector<bool>{false});
    EXPECT_EQ(seq.frames[2], std::vector<bool>{true});
    EXPECT_THROW((void)fold_pattern(u, Pattern::single({true})),
                 SemanticError);
}

TEST(SeqAtpg, CoversTheCounterBeyondRandomShortSequences) {
    const Netlist n = circuits::counter(4);
    const auto faults = collapse_faults(n);
    const auto result = seq_atpg(n, faults, /*frames=*/20);
    // Every generated pattern is verified sequentially inside seq_atpg,
    // so `detected` is a true lower bound.
    EXPECT_GT(static_cast<double>(result.detected) /
                  static_cast<double>(faults.size()),
              0.85);
    // Replay confirms.
    const auto replay = fault_simulate_parallel(n, faults, result.patterns);
    EXPECT_GE(replay.detected, result.detected);
}

TEST(SeqAtpg, FindsTheDeepFaultOnlyWithEnoughFrames) {
    // Exciting "carry into the MSB stuck-at-0" requires the lower three
    // bits to reach 111 — at least 7 enabled frames — plus one more frame
    // to observe q3. A 4-frame unroll provably cannot do it; 12 can.
    const Netlist n = circuits::counter(4);
    const Fault deep{n.require("t3"), -1, false};
    const auto shallow = seq_atpg(n, {deep}, 4);
    EXPECT_EQ(shallow.not_found, 1u);
    const auto deep_enough = seq_atpg(n, {deep}, 12);
    EXPECT_EQ(deep_enough.detected, 1u);
    // And the generated sequence really is ≥ 9 frames of mostly-enabled
    // counting (verified sequentially inside seq_atpg already).
    ASSERT_EQ(deep_enough.patterns.size(), 1u);
    EXPECT_EQ(deep_enough.patterns[0].frames.size(), 12u);
}

} // namespace
} // namespace ctk::gate
