// Unit tests: report rendering details.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/grading.hpp"
#include "dut/catalogue.hpp"
#include "model/paper.hpp"
#include "report/report.hpp"
#include "script/xml_io.hpp"
#include "sim/virtual_stand.hpp"
#include "stand/paper.hpp"

namespace ctk::report {
namespace {

const model::MethodRegistry kReg = model::MethodRegistry::builtin();

core::RunResult run_paper() {
    const auto script = script::compile(model::paper::suite(), kReg);
    auto desc = stand::paper::figure1_stand();
    core::TestEngine engine(
        desc, std::make_shared<sim::VirtualStand>(
                  desc, dut::make_golden("interior_light")));
    return engine.run(script);
}

TEST(Report, TestSheetColumnsFollowFirstUseOrder) {
    const auto script = script::compile(model::paper::suite(), kReg);
    const auto result = run_paper();
    const std::string sheet =
        render_test_sheet(script.tests[0], result.tests[0]);
    // Header order matches the paper: IGN_ST before DS_FL before INT_ILL.
    const auto p_ign = sheet.find("IGN_ST");
    const auto p_fl = sheet.find("DS_FL");
    const auto p_ill = sheet.find("INT_ILL");
    ASSERT_NE(p_ign, std::string::npos);
    EXPECT_LT(p_ign, p_fl);
    EXPECT_LT(p_fl, p_ill);
    // One row per step plus header/rule.
    EXPECT_EQ(std::count(sheet.begin(), sheet.end(), '\n'), 12);
}

TEST(Report, AllocationShowsUnconnectedRearDoors) {
    const auto script = script::compile(model::paper::suite(), kReg);
    const auto desc = stand::paper::figure1_stand();
    const auto plan = stand::allocate_test(desc, script, script.tests[0]);
    const std::string out = render_allocation(plan);
    EXPECT_NE(out.find("(open)"), std::string::npos);
    EXPECT_NE(out.find("Sw1.1,Sw1.2"), std::string::npos);
}

TEST(Report, CsvEscapesNothingButIsStable) {
    const auto r = run_paper();
    const std::string csv = to_csv(r);
    // Header + one row per check; all rows passed (",1" terminated).
    std::istringstream lines(csv);
    std::string line;
    std::getline(lines, line);
    EXPECT_EQ(line, "test,step,signal,status,method,lo,hi,measured,passed");
    std::size_t rows = 0;
    while (std::getline(lines, line)) {
        ++rows;
        EXPECT_EQ(line.substr(line.size() - 2), ",1") << line;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 8u) << line;
    }
    EXPECT_EQ(rows, r.check_count());
}

TEST(Report, SummaryCountsFailedSteps) {
    const auto mutants = dut::mutants_of("interior_light");
    const auto it = std::find_if(
        mutants.begin(), mutants.end(),
        [](const dut::Mutant& m) { return m.name == "ignore_night"; });
    const auto script = script::compile(model::paper::suite(), kReg);
    auto desc = stand::paper::figure1_stand();
    core::TestEngine engine(
        desc, std::make_shared<sim::VirtualStand>(desc, it->make()));
    const auto r = engine.run(script);
    const std::string summary = render_summary(r);
    EXPECT_NE(summary.find("FAIL"), std::string::npos);
    EXPECT_NE(summary.find("overall: FAIL"), std::string::npos);
    // The failed-step count in the table is non-zero.
    EXPECT_GT(r.tests[0].failed_steps(), 0u);
}

TEST(Report, CoverageTableListsGroupsAndTotals) {
    core::GradingOptions opts;
    opts.jobs = 2;
    const auto grading = core::grade_kb(opts, {"wiper", "turn_signal"});
    const auto matrix = grading.to_coverage();
    const std::string out = render_coverage(matrix);
    EXPECT_NE(out.find("wiper"), std::string::npos);
    EXPECT_NE(out.find("turn_signal"), std::string::npos);
    EXPECT_NE(out.find("TOTAL"), std::string::npos);
    EXPECT_NE(out.find("coverage"), std::string::npos);
    EXPECT_NE(out.find("untestable"), std::string::npos);
    EXPECT_NE(out.find("worker(s)"), std::string::npos);
    // Per-fault ids only appear in the detail rendering.
    EXPECT_EQ(out.find("stuck_low@wiper_lo"), std::string::npos);
    const std::string detail = render_coverage(matrix, true);
    EXPECT_NE(detail.find("stuck_low@wiper_lo"), std::string::npos);
    EXPECT_NE(detail.find("detected"), std::string::npos);
}

TEST(Report, CoverageCsvHasOneRowPerFault) {
    core::GradingOptions opts;
    opts.jobs = 1;
    const auto grading = core::grade_kb(opts, {"wiper"});
    const std::string csv = coverage_to_csv(grading.to_coverage());
    std::istringstream lines(csv);
    std::string line;
    std::getline(lines, line);
    EXPECT_EQ(line,
              "group,fault,kind,outcome,detected_by,detected_at,"
              "flipped_checks,error");
    std::size_t rows = 0;
    while (std::getline(lines, line)) {
        ++rows;
        EXPECT_EQ(line.rfind("wiper,", 0), 0u) << line;
    }
    EXPECT_EQ(rows, grading.fault_count());
}

TEST(Report, CoverageOfNothingRendersNa) {
    // The kernel's zero-fault rule surfaces in the report: a group with
    // no graded faults prints n/a — never a fabricated 100 %.
    core::CoverageMatrix matrix;
    core::CoverageGroup group;
    group.name = "empty";
    group.status = "-";
    matrix.groups.push_back(group);
    const std::string out = render_coverage(matrix);
    EXPECT_NE(out.find("n/a"), std::string::npos);
    EXPECT_EQ(out.find("100 %"), std::string::npos);
}

TEST(Report, AugmentationRenderTellsTheWholeStory) {
    core::AugmentationResult result;
    result.rounds = 1;
    result.workers = 2;

    core::FamilyAugmentation family;
    family.family = "wiper";
    family.before.name = "wiper";
    family.before.status = "PASS";
    core::CoverageEntry miss;
    miss.id = "offset@wiper_lo+0.8";
    miss.kind = "offset";
    miss.outcome = core::FaultOutcome::Undetected;
    family.before.entries.push_back(miss);
    family.after = family.before;
    family.after.entries[0].outcome = core::FaultOutcome::Detected;
    family.after.entries[0].detected_at = "aug_offset/1/wiper_lo";

    core::SynthesizedTest added;
    added.name = "aug_offset_wiper_lo_0_8";
    added.fault_id = "offset@wiper_lo+0.8";
    added.origin = "wiper_modes/1/wiper_lo";
    added.kind = "tighten";
    family.added.push_back(added);

    core::FaultAugmentation fa;
    fa.fault = sim::FaultSpec{sim::FaultKind::PinOffset, "wiper_lo", 0.8};
    fa.outcome = core::AugmentOutcome::ClosedByNewTest;
    fa.test_name = added.name;
    fa.candidates_tried = 1;
    fa.note = "tighten @ wiper_modes/1/wiper_lo";
    family.faults.push_back(fa);
    family.candidate_runs = 2;
    result.families.push_back(family);

    const std::string out = render_augmentation(result, true);
    EXPECT_NE(out.find("wiper"), std::string::npos);
    EXPECT_NE(out.find("aug_offset_wiper_lo_0_8"), std::string::npos);
    EXPECT_NE(out.find("tighten @ wiper_modes/1/wiper_lo"),
              std::string::npos);
    EXPECT_NE(out.find("closed-by-new-test"), std::string::npos);
    // Before 0 %, after 100 % — the headline delta renders.
    EXPECT_NE(out.find("0 % -> 100 %"), std::string::npos);
}

} // namespace
} // namespace ctk::report
