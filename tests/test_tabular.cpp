// Unit tests: CSV/TSV parsing, sheets, multi-sheet workbooks.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "tabular/csv.hpp"
#include "tabular/workbook.hpp"

namespace ctk::tabular {
namespace {

TEST(Csv, DetectsSemicolonSeparator) {
    EXPECT_EQ(detect_separator("a;b;c\n1;2;3\n"), ';');
    EXPECT_EQ(detect_separator("a,b,c\n"), ',');
    EXPECT_EQ(detect_separator("a\tb\tc\n"), '\t');
}

TEST(Csv, ParsesSimpleGrid) {
    const Sheet s = parse_csv("a;b\n1;2\n", "t");
    EXPECT_EQ(s.row_count(), 2u);
    EXPECT_EQ(s.col_count(), 2u);
    EXPECT_EQ(s.at(0, 0).text(), "a");
    EXPECT_EQ(s.at(1, 1).text(), "2");
}

TEST(Csv, QuotedFieldsKeepSeparatorsAndNewlines) {
    const Sheet s =
        parse_csv("\"a;b\";\"line1\nline2\";\"he said \"\"hi\"\"\"\n", "t");
    EXPECT_EQ(s.at(0, 0).raw(), "a;b");
    EXPECT_EQ(s.at(0, 1).raw(), "line1\nline2");
    EXPECT_EQ(s.at(0, 2).raw(), "he said \"hi\"");
}

TEST(Csv, UnterminatedQuoteThrowsWithPosition) {
    try {
        (void)parse_csv("a;\"unclosed\n", "t");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.pos().line, 1u);
    }
}

TEST(Csv, SkipsBlankRowsByDefault) {
    const Sheet s = parse_csv("a;b\n;\n\n1;2\n", "t");
    EXPECT_EQ(s.row_count(), 2u);
}

TEST(Csv, KeepsBlankRowsOnRequest) {
    CsvOptions opts;
    opts.skip_blank_rows = false;
    opts.separator = ';';
    const Sheet s = parse_csv("a;b\n;\n1;2\n", "t", opts);
    EXPECT_EQ(s.row_count(), 3u);
}

TEST(Csv, HandlesCrLfLineEndings) {
    const Sheet s = parse_csv("a;b\r\n1;2\r\n", "t");
    EXPECT_EQ(s.at(0, 1).text(), "b");
    EXPECT_EQ(s.at(1, 1).text(), "2");
}

TEST(Csv, EmitRoundTripsQuoting) {
    Sheet s("t");
    s.add_row({"plain", "with;sep", "with\"quote", "multi\nline"});
    s.add_row({"0,5", "", "x", ""});
    const Sheet back = parse_csv(emit_csv(s), "t");
    ASSERT_EQ(back.row_count(), s.row_count());
    for (std::size_t r = 0; r < s.row_count(); ++r)
        for (std::size_t c = 0; c < s.col_count(); ++c)
            EXPECT_EQ(back.at(r, c).raw(), s.at(r, c).raw())
                << "r=" << r << " c=" << c;
}

TEST(Cell, NumberHandlesGermanDecimals) {
    EXPECT_DOUBLE_EQ(*Cell("0,5").number(), 0.5);
    EXPECT_FALSE(Cell("Open").number().has_value());
    EXPECT_TRUE(Cell("  ").empty());
}

TEST(Sheet, FindRowAndColAreCaseInsensitive) {
    Sheet s("t");
    s.add_row({"Status", "Method", "Attribut"});
    s.add_row({"Ho", "get_u", "u"});
    EXPECT_EQ(s.find_col(0, "method"), 1u);
    EXPECT_EQ(s.find_col(0, "ATTRIBUT"), 2u);
    EXPECT_EQ(s.find_col(0, "missing"), Sheet::npos);
    EXPECT_EQ(s.find_row("ho"), 1u);
    EXPECT_EQ(s.find_row("nope"), Sheet::npos);
}

TEST(Sheet, OutOfRangeAccessYieldsEmptyCell) {
    Sheet s("t");
    s.add_row({"a"});
    EXPECT_TRUE(s.at(5, 5).empty());
    EXPECT_TRUE(s.at(0, 3).empty());
}

TEST(Workbook, ParseMultiSplitsSheets) {
    const Workbook wb = Workbook::parse_multi(
        "# a comment\n"
        "#sheet alpha\n"
        "a;b\n"
        "#sheet beta\n"
        "c;d\n1;2\n");
    ASSERT_EQ(wb.sheets().size(), 2u);
    EXPECT_EQ(wb.sheets()[0].name(), "alpha");
    EXPECT_EQ(wb.require("beta").row_count(), 2u);
    EXPECT_EQ(wb.find("gamma"), nullptr);
    EXPECT_THROW((void)wb.require("gamma"), SemanticError);
}

TEST(Workbook, SheetLookupIsCaseInsensitive) {
    Workbook wb;
    wb.add_sheet(Sheet("Signals"));
    EXPECT_NE(wb.find("signals"), nullptr);
}

TEST(Workbook, AddSheetReplacesByName) {
    Workbook wb;
    Sheet a("s");
    a.add_row({"old"});
    wb.add_sheet(std::move(a));
    Sheet b("S");
    b.add_row({"new"});
    wb.add_sheet(std::move(b));
    ASSERT_EQ(wb.sheets().size(), 1u);
    EXPECT_EQ(wb.require("s").at(0, 0).text(), "new");
}

TEST(Workbook, EmitMultiRoundTrips) {
    Workbook wb;
    Sheet s1("one");
    s1.add_row({"a", "b;c"});
    wb.add_sheet(std::move(s1));
    Sheet s2("two");
    s2.add_row({"x"});
    wb.add_sheet(std::move(s2));

    const Workbook back = Workbook::parse_multi(wb.emit_multi());
    ASSERT_EQ(back.sheets().size(), 2u);
    EXPECT_EQ(back.require("one").at(0, 1).raw(), "b;c");
    EXPECT_EQ(back.require("two").at(0, 0).text(), "x");
}

TEST(Workbook, SheetMarkerWithoutNameThrows) {
    EXPECT_THROW((void)Workbook::parse_multi("#sheet   \na;b\n"), ParseError);
}

TEST(Workbook, LoadDirReadsCsvFiles) {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "ctk_tabular_test_dir";
    fs::create_directories(dir);
    {
        std::ofstream f(dir / "signals.csv");
        f << "signal;direction\nX;in\n";
    }
    {
        std::ofstream f(dir / "status.csv");
        f << "status;method\nHo;get_u\n";
    }
    const Workbook wb = Workbook::load_dir(dir.string());
    EXPECT_EQ(wb.sheets().size(), 2u);
    EXPECT_EQ(wb.require("signals").at(1, 0).text(), "X");
    fs::remove_all(dir);
}

TEST(Workbook, LoadDirRejectsMissingDirectory) {
    EXPECT_THROW((void)Workbook::load_dir("/nonexistent/ctk"), Error);
}

} // namespace
} // namespace ctk::tabular
