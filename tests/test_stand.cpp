// Unit tests: resources, stand descriptions, the §4 allocator.
#include <gtest/gtest.h>

#include <limits>

#include "model/paper.hpp"
#include "script/xml_io.hpp"
#include "stand/allocator.hpp"
#include "stand/paper.hpp"

namespace ctk::stand {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const model::MethodRegistry kReg = model::MethodRegistry::builtin();

Resource make_decade(double max_ohm, bool disconnect = true) {
    Resource r;
    r.id = "Dec";
    r.label = "decade";
    r.methods.push_back(
        MethodSupport{"put_r", {ParamRange{"r", 0.0, max_ohm, "Ohm"}}});
    r.supports_disconnect = disconnect;
    return r;
}

Resource make_dvm(double lo, double hi) {
    Resource r;
    r.id = "Dvm";
    r.label = "DVM";
    r.methods.push_back(
        MethodSupport{"get_u", {ParamRange{"u", lo, hi, "V"}}});
    return r;
}

TEST(Resource, FindMethodCaseInsensitive) {
    const Resource r = make_decade(1e6);
    EXPECT_NE(r.find_method("PUT_R"), nullptr);
    EXPECT_EQ(r.find_method("get_u"), nullptr);
}

TEST(Resource, PutFeasibleWhenRangeIntersectsTolerance) {
    const Resource r = make_decade(1e6, /*disconnect=*/false);
    // Open: 0..1 Ohm — intersects [0, 1e6].
    EXPECT_TRUE(r.can_realise("put_r", false, 0.0, 1.0));
    // Window entirely above range.
    EXPECT_FALSE(r.can_realise("put_r", false, 2e6, kInf));
}

TEST(Resource, PutInfRequiresDisconnectWhenAboveRange) {
    // Closed: tolerance [5000, INF]. A decade reaching 1 MOhm intersects
    // regardless; one maxing at 1 kOhm only works via disconnect.
    const Resource small_with_disc = [&] {
        Resource r = make_decade(1000.0, true);
        return r;
    }();
    const Resource small_no_disc = make_decade(1000.0, false);
    EXPECT_TRUE(small_with_disc.can_realise("put_r", false, 5000.0, kInf));
    EXPECT_FALSE(small_no_disc.can_realise("put_r", false, 5000.0, kInf));
}

TEST(Resource, RealisedValueClampsNominalIntoWindow) {
    const Resource r = make_decade(2e5, true);
    // Open (nom 0): applies 0.
    EXPECT_DOUBLE_EQ(*r.realised_value("put_r", 0.0, 0.0, 1.0), 0.0);
    // Closed (nom INF, window [5000, INF]): disconnect gives exact INF.
    EXPECT_EQ(*r.realised_value("put_r", kInf, 5000.0, kInf), kInf);
    // Without disconnect: clamps to the decade's max, still in window.
    const Resource nd = make_decade(2e5, false);
    EXPECT_DOUBLE_EQ(*nd.realised_value("put_r", kInf, 5000.0, kInf), 2e5);
    // Infeasible window.
    EXPECT_FALSE(nd.realised_value("put_r", 3e5, 3e5, 4e5).has_value());
}

TEST(Resource, GetRequiresCoveringTheExpectedWindow) {
    const Resource dvm = make_dvm(-60, 60);
    EXPECT_TRUE(dvm.can_realise("get_u", true, 8.4, 13.2));   // Ho at 12 V
    EXPECT_TRUE(dvm.can_realise("get_u", true, 0.0, 3.6));    // Lo
    EXPECT_FALSE(dvm.can_realise("get_u", true, -100.0, 0.0)); // below range
    const Resource small = make_dvm(0, 10);
    EXPECT_FALSE(small.can_realise("get_u", true, 8.4, 13.2)); // 13.2 > 10
}

TEST(Resource, MethodsWithoutRangesOnlyNeedSupport) {
    Resource can;
    can.id = "Can";
    can.methods.push_back(MethodSupport{"put_can", {}});
    EXPECT_TRUE(can.can_realise("put_can", false, std::nullopt, std::nullopt));
}

// ---------------------------------------------------------------------------
// Stand description
// ---------------------------------------------------------------------------

TEST(StandDesc, DuplicateResourceRejected) {
    StandDescription s("x");
    s.add_resource(make_decade(1.0));
    EXPECT_THROW(s.add_resource(make_decade(1.0)), SemanticError);
}

TEST(StandDesc, ConnectRequiresKnownResource) {
    StandDescription s("x");
    EXPECT_THROW(s.connect("ghost", "pin", "K1"), SemanticError);
}

TEST(StandDesc, Figure1MatchesTables3And4) {
    const StandDescription s = paper::figure1_stand();
    // Table 3.
    const Resource& r1 = s.require_resource("Ress1");
    EXPECT_EQ(r1.label, "DVM");
    const ParamRange* u = r1.find_method("get_u")->range_of("u");
    EXPECT_DOUBLE_EQ(u->min, -60.0);
    EXPECT_DOUBLE_EQ(u->max, 60.0);
    EXPECT_DOUBLE_EQ(
        s.require_resource("Ress2").find_method("put_r")->range_of("r")->max,
        1.0e6);
    EXPECT_DOUBLE_EQ(
        s.require_resource("Ress3").find_method("put_r")->range_of("r")->max,
        2.0e5);
    // Table 4 (spot checks, verbatim cells).
    EXPECT_EQ(s.connection("Ress1", "int_ill_f")->via, "Sw1.1");
    EXPECT_EQ(s.connection("Ress1", "int_ill_r")->via, "Sw1.2");
    EXPECT_EQ(s.connection("Ress2", "ds_rr")->via, "Mx4.2");
    EXPECT_EQ(s.connection("Ress3", "ds_fl")->via, "Mx1.1");
    EXPECT_EQ(s.connection("Ress1", "ds_fl"), nullptr);
    EXPECT_TRUE(s.reaches("Ress1", {"int_ill_f", "int_ill_r"}));
    EXPECT_FALSE(s.reaches("Ress2", {"int_ill_f"}));
    EXPECT_DOUBLE_EQ(s.variables().get("ubatt"), 12.0);
}

TEST(StandDesc, WorkbookRoundTrip) {
    const StandDescription ref = paper::figure1_stand();
    const StandDescription back =
        StandDescription::from_workbook(ref.to_workbook(), ref.name());
    EXPECT_EQ(back.resources().size(), ref.resources().size());
    EXPECT_EQ(back.connections().size(), ref.connections().size());
    EXPECT_EQ(back.connection("Ress3", "ds_rl")->via, "Mx3.1");
    EXPECT_TRUE(back.require_resource("Ress2").supports_disconnect);
    EXPECT_TRUE(back.require_resource("Can1").shareable);
    EXPECT_DOUBLE_EQ(back.variables().get("ubatt"), 12.0);
}

TEST(StandDesc, WorkbookTextParses) {
    const auto wb =
        tabular::Workbook::parse_multi(paper::figure1_workbook_text());
    const StandDescription s = StandDescription::from_workbook(wb, "fig1");
    EXPECT_DOUBLE_EQ(
        s.require_resource("Ress2").find_method("put_r")->range_of("r")->max,
        1.0e6); // "1,00E+06" survived the locale
    EXPECT_EQ(s.connection("Can1", "night")->via, "bus");
}

TEST(StandDesc, MissingVariablesListed) {
    StandDescription s("x");
    const auto missing = s.missing_variables({"ubatt", "tempr"});
    ASSERT_EQ(missing.size(), 2u);
    s.set_variable("ubatt", 12.0);
    EXPECT_EQ(s.missing_variables({"ubatt"}).size(), 0u);
}

// ---------------------------------------------------------------------------
// Allocator
// ---------------------------------------------------------------------------

script::TestScript paper_script() {
    return script::compile(model::paper::suite(), kReg);
}

TEST(Allocator, PaperAllocationPicksExpectedResources) {
    const StandDescription s = paper::figure1_stand();
    const script::TestScript sc = paper_script();
    const Allocation plan = allocate_test(s, sc, sc.tests[0]);

    // INT_ILL must go to the DVM through Sw1.1/Sw1.2 (the paper's wiring).
    const AllocationEntry* ill = plan.for_signal("int_ill");
    ASSERT_NE(ill, nullptr);
    EXPECT_EQ(ill->resource, "Ress1");
    EXPECT_EQ(ill->via, (std::vector<std::string>{"Sw1.1", "Sw1.2"}));

    // Each stimulated door switch gets its own decade.
    const AllocationEntry* fl = plan.for_signal("ds_fl");
    const AllocationEntry* fr = plan.for_signal("ds_fr");
    ASSERT_NE(fl, nullptr);
    ASSERT_NE(fr, nullptr);
    EXPECT_NE(fl->resource, fr->resource);
    EXPECT_TRUE(fl->resource == "Ress2" || fl->resource == "Ress3");
    EXPECT_TRUE(fr->resource == "Ress2" || fr->resource == "Ress3");

    // Bus signals share the CAN interface.
    EXPECT_EQ(plan.for_signal("ign_st")->resource, "Can1");
    EXPECT_EQ(plan.for_signal("night")->resource, "Can1");

    // The rear doors are only ever 'Closed' (open contact): no decade is
    // consumed — the pins are simply left unconnected. This is how a
    // two-decade stand serves a four-door DUT.
    EXPECT_TRUE(plan.for_signal("ds_rl")->is_unconnected());
    EXPECT_TRUE(plan.for_signal("ds_rr")->is_unconnected());
}

TEST(Allocator, RequirementsMergeRepeatedStatuses) {
    const StandDescription s = paper::figure1_stand();
    const script::TestScript sc = paper_script();
    const auto reqs = build_requirements(sc, sc.tests[0], s.variables());
    // 6 signals are touched: ign_st, ds_fl, ds_fr, ds_rl, ds_rr, night,
    // int_ill — ds_rl/ds_rr only via init. That is 7 requirements.
    EXPECT_EQ(reqs.size(), 7u);
    for (const auto& r : reqs) {
        if (r.signal == "int_ill") {
            // Lo and Ho: exactly two distinct demands despite 10 steps.
            EXPECT_EQ(r.demands.size(), 2u);
            EXPECT_TRUE(r.is_get);
        }
        if (r.signal == "ds_fl") {
            // Open and Closed.
            EXPECT_EQ(r.demands.size(), 2u);
            EXPECT_FALSE(r.is_get);
        }
    }
}

TEST(Allocator, DeficientStandRaisesPaperError) {
    const StandDescription s = paper::deficient_stand();
    const script::TestScript sc = paper_script();
    try {
        (void)allocate_test(s, sc, sc.tests[0]);
        FAIL() << "expected StandError";
    } catch (const StandError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("no resource"), std::string::npos) << msg;
        EXPECT_NE(msg.find("int_ill"), std::string::npos) << msg;
    }
}

TEST(Allocator, MissingVariableRaisesStandError) {
    StandDescription s = paper::figure1_stand();
    StandDescription no_var("no_var");
    for (const auto& r : s.resources()) no_var.add_resource(r);
    for (const auto& c : s.connections())
        no_var.connect(c.resource, c.pin, c.via);
    const script::TestScript sc = paper_script();
    EXPECT_THROW((void)allocate_test(no_var, sc, sc.tests[0]), StandError);
}

TEST(Allocator, SupplierStandAllocatesSameScript) {
    const StandDescription s = paper::supplier_stand();
    const script::TestScript sc = paper_script();
    const Allocation plan = allocate_test(s, sc, sc.tests[0]);
    EXPECT_EQ(plan.for_signal("int_ill")->resource, "DVM1");
}

TEST(Allocator, MatchingSucceedsWhereGreedyFails) {
    // Two requirements: sig_a can use R1 or R2, sig_b only R1.
    // Greedy (declaration order sig_a first, resource order R1 first)
    // burns R1 on sig_a and fails on sig_b; matching reassigns.
    StandDescription s("tight");
    Resource r1;
    r1.id = "R1";
    r1.methods.push_back(
        MethodSupport{"put_r", {ParamRange{"r", 0.0, 1e6, "Ohm"}}});
    Resource r2 = r1;
    r2.id = "R2";
    s.add_resource(r1);
    s.add_resource(r2);
    s.connect("R1", "sig_a", "K1");
    s.connect("R2", "sig_a", "K2");
    s.connect("R1", "sig_b", "K3");

    Requirement a;
    a.signal = "sig_a";
    a.method = "put_r";
    a.pins = {"sig_a"};
    a.demands.push_back(ValueDemand{"X", 100.0, 0.0, 1000.0});
    Requirement b = a;
    b.signal = "sig_b";
    b.pins = {"sig_b"};

    EXPECT_THROW((void)allocate(s, {a, b}, AllocPolicy::Greedy), StandError);
    const Allocation plan = allocate(s, {a, b}, AllocPolicy::Matching);
    EXPECT_EQ(plan.for_signal("sig_a")->resource, "R2");
    EXPECT_EQ(plan.for_signal("sig_b")->resource, "R1");
}

TEST(Allocator, ValueDemandOutsideEveryResourceFails) {
    StandDescription s("small");
    s.add_resource(make_decade(100.0, /*disconnect=*/false));
    s.connect("Dec", "p", "K1");
    Requirement r;
    r.signal = "p";
    r.method = "put_r";
    r.pins = {"p"};
    r.demands.push_back(ValueDemand{"Big", 5000.0, 4000.0, 6000.0});
    EXPECT_THROW((void)allocate(s, {r}), StandError);
}

TEST(Allocator, MatchingHandlesPaperScript) {
    const StandDescription s = paper::figure1_stand();
    const script::TestScript sc = paper_script();
    const Allocation plan =
        allocate_test(s, sc, sc.tests[0], AllocPolicy::Matching);
    EXPECT_EQ(plan.for_signal("int_ill")->resource, "Ress1");
    EXPECT_NE(plan.for_signal("ds_fl")->resource,
              plan.for_signal("ds_fr")->resource);
}

} // namespace
} // namespace ctk::stand
