// Sharded fault simulation and the gate-side coverage producer:
// shard-count invariance (masks AND attribution bit-identical to the
// serial path), kernel-routed ATPG top-up, and grade_netlist
// determinism across worker counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gate/circuits.hpp"
#include "gate/grade.hpp"

namespace ctk::gate {
namespace {

std::vector<Pattern> random_patterns(const Netlist& net, std::size_t count,
                                     std::size_t frames,
                                     std::uint64_t seed = 101) {
    Rng rng(seed);
    std::vector<Pattern> patterns;
    for (std::size_t p = 0; p < count; ++p) {
        Pattern pat;
        for (std::size_t f = 0; f < frames; ++f) {
            std::vector<bool> frame(net.inputs().size());
            for (auto&& v : frame) v = rng.next_bool();
            pat.frames.push_back(std::move(frame));
        }
        patterns.push_back(std::move(pat));
    }
    return patterns;
}

// ---------------------------------------------------------------------------
// Shard-count invariance (the acceptance criterion: bit-identical
// detected_mask and attribution to fault_simulate_serial at every
// worker count, combinational and sequential)
// ---------------------------------------------------------------------------

class ShardInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardInvariance, ShardedMatchesSerialAtEveryWorkerCount) {
    const std::string which = GetParam();
    const Netlist net = which == "c17"     ? circuits::c17()
                        : which == "adder" ? circuits::ripple_adder(5)
                        : which == "alu"   ? circuits::alu(3)
                        : which == "mux"   ? circuits::mux_tree(3)
                                           : circuits::counter(4);
    const auto faults = collapse_faults(net);
    const auto patterns =
        random_patterns(net, 60, net.is_sequential() ? 6 : 1);

    const auto serial = fault_simulate_serial(net, faults, patterns);
    for (const unsigned jobs : {1u, 4u, 8u}) {
        const auto sharded =
            fault_simulate_sharded(net, faults, patterns, jobs);
        EXPECT_EQ(sharded.detected, serial.detected) << "jobs=" << jobs;
        EXPECT_EQ(sharded.detected_mask, serial.detected_mask)
            << "jobs=" << jobs;
        EXPECT_EQ(sharded.detected_by, serial.detected_by)
            << "jobs=" << jobs;
    }
    // jobs = 0 (hardware threads) agrees too.
    const auto hw = fault_simulate_sharded(net, faults, patterns, 0);
    EXPECT_EQ(hw.detected_mask, serial.detected_mask);
    EXPECT_EQ(hw.detected_by, serial.detected_by);
}

INSTANTIATE_TEST_SUITE_P(Circuits, ShardInvariance,
                         ::testing::Values("c17", "adder", "alu", "mux",
                                           "counter"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

TEST(ShardedFaultSim, AttributionNeverExceedsPatternList) {
    const Netlist net = circuits::ripple_adder(4);
    const auto faults = collapse_faults(net);
    const auto patterns = random_patterns(net, 37, 1);
    const auto result = fault_simulate_sharded(net, faults, patterns, 4);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        // optional attribution is engaged exactly when detected, and an
        // engaged value is a valid pattern index — the reason the raw
        // npos sentinel is gone.
        EXPECT_EQ(result.detected_by[i].has_value(),
                  static_cast<bool>(result.detected_mask[i]));
        if (result.detected_by[i]) {
            EXPECT_LT(*result.detected_by[i], patterns.size());
        }
    }
}

TEST(ShardedFaultSim, DetectingPatternActuallyDetects) {
    const Netlist net = circuits::alu(2);
    const auto faults = collapse_faults(net);
    const auto patterns = random_patterns(net, 50, 1);
    const auto result = fault_simulate_sharded(net, faults, patterns, 8);
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (!result.detected_by[i]) continue;
        const auto replay = fault_simulate_serial(
            net, {faults[i]}, {patterns[*result.detected_by[i]]});
        EXPECT_EQ(replay.detected, 1u) << to_string(net, faults[i]);
    }
}

// ---------------------------------------------------------------------------
// Kernel-routed ATPG top-up
// ---------------------------------------------------------------------------

TEST(GateCoverage, UndetectedRemainderReadsOffTheKernel) {
    const Netlist net = circuits::mux_tree(3);
    const auto faults = collapse_faults(net);
    const auto patterns = random_patterns(net, 8, 1);
    const auto sim = fault_simulate_sharded(net, faults, patterns, 2);
    const auto group = to_coverage(net, faults, sim);
    ASSERT_GT(group.undetected(), 0u) << "budget too generous for test";

    const auto remainder = undetected_remainder(faults, group);
    EXPECT_EQ(remainder.size(), group.undetected());

    // The coverage overload is exactly run_atpg over that remainder.
    const auto via_kernel = run_atpg(net, faults, group);
    const auto direct = run_atpg(net, remainder);
    EXPECT_EQ(via_kernel.detected, direct.detected);
    EXPECT_EQ(via_kernel.untestable, direct.untestable);
    EXPECT_EQ(via_kernel.patterns.size(), direct.patterns.size());

    // A grade of some other universe is rejected, not misread.
    core::CoverageGroup wrong = group;
    wrong.entries.pop_back();
    EXPECT_THROW((void)undetected_remainder(faults, wrong), SemanticError);
    EXPECT_THROW((void)run_atpg(net, faults, wrong), SemanticError);
}

TEST(GateCoverage, GradeNetlistFoldsTopUpIntoTheMatrix) {
    const Netlist net = circuits::mux_tree(3);
    GateGradeOptions options;
    options.max_patterns = 8; // deliberately leave coverage incomplete
    options.jobs = 2;
    const auto graded = grade_netlist(net, options);

    ASSERT_EQ(graded.coverage.entries.size(), graded.faults.size());
    EXPECT_GT(graded.atpg.detected, 0u);
    EXPECT_EQ(graded.atpg.aborted, 0u);
    // mux trees are irredundant: after the top-up everything is
    // detected and nothing graded is left behind.
    EXPECT_EQ(graded.coverage.undetected(), 0u);
    EXPECT_EQ(graded.coverage.untestable(), 0u);
    EXPECT_EQ(graded.coverage.coverage(), std::optional<double>(1.0));
    EXPECT_EQ(graded.patterns.size(),
              graded.random_patterns + graded.atpg.patterns.size());

    // Every attribution — random prefix or ATPG top-up — points at a
    // pattern that really detects its fault.
    for (std::size_t i = 0; i < graded.faults.size(); ++i) {
        const auto& entry = graded.coverage.entries[i];
        ASSERT_TRUE(entry.detected_by.has_value()) << entry.id;
        ASSERT_LT(*entry.detected_by, graded.patterns.size());
        const auto replay = fault_simulate_serial(
            net, {graded.faults[i]},
            {graded.patterns[*entry.detected_by]});
        EXPECT_EQ(replay.detected, 1u) << entry.id;
    }
}

TEST(GateCoverage, RedundantFaultBecomesUntestableNotMissed) {
    // The classically redundant site from the PODEM tests: AND(b, !b)
    // is constant 0, so its output sa0 is undetectable. The kernel
    // must file it under Untestable — out of the graded denominator —
    // rather than leave it an apparent blind spot.
    Netlist n("redundant");
    const GateId a = n.add_input("a");
    const GateId b = n.add_input("b");
    const GateId nb = n.add_gate(GateType::Not, "nb", {b});
    const GateId c0 = n.add_gate(GateType::And, "c0", {b, nb});
    const GateId y = n.add_gate(GateType::Or, "y", {a, c0});
    n.mark_output(y);

    GateGradeOptions options;
    options.max_patterns = 16;
    const auto graded = grade_netlist(n, options);
    EXPECT_EQ(graded.coverage.untestable(), graded.atpg.untestable);
    EXPECT_GT(graded.coverage.untestable(), 0u);
    EXPECT_EQ(graded.coverage.undetected(), 0u);
    EXPECT_EQ(graded.coverage.coverage(), std::optional<double>(1.0));
    (void)a;
    (void)c0;
}

TEST(GateCoverage, SequentialGradeSkipsTopUpHonestly) {
    GateGradeOptions options;
    options.max_patterns = 64;
    const auto graded = grade_netlist(circuits::counter(4), options);
    EXPECT_TRUE(graded.atpg.per_fault.empty()); // PODEM is single-frame
    EXPECT_EQ(graded.patterns.size(), graded.random_patterns);
    ASSERT_TRUE(graded.coverage.coverage().has_value());
    EXPECT_GT(*graded.coverage.coverage(), 0.5);
}

TEST(GateCoverage, GradeNetlistIsWorkerCountInvariant) {
    for (const Netlist& net :
         {circuits::c17(), circuits::mux_tree(3), circuits::counter(4)}) {
        std::optional<std::string> want;
        for (const unsigned jobs : {1u, 4u, 8u}) {
            GateGradeOptions options;
            options.max_patterns = 16;
            options.jobs = jobs;
            const auto graded = grade_netlist(net, options);
            const std::string got =
                core::coverage_fingerprint(graded.coverage);
            if (!want)
                want = got;
            else
                EXPECT_EQ(got, *want)
                    << net.name() << " at jobs=" << jobs;
        }
    }
}

TEST(GateCoverage, NetlistUniverseReportsTheCollapsedCount) {
    NetlistUniverse universe(circuits::c17());
    EXPECT_EQ(universe.name(), "c17");
    EXPECT_EQ(universe.fault_count(),
              collapse_faults(circuits::c17()).size());
    const auto group = universe.grade(2);
    EXPECT_EQ(group.entries.size(), universe.fault_count());
    EXPECT_EQ(group.coverage(), std::optional<double>(1.0));
}

// ---------------------------------------------------------------------------
// The min-faults-per-shard floor (DESIGN.md §12)
// ---------------------------------------------------------------------------

TEST(ShardedFaultSim, EffectiveWorkersHonourTheShardFloor) {
    // c17's collapsed universe sits far below kMinFaultsPerShard: any
    // jobs request collapses to the inline (serial-identical) path.
    const Netlist small = circuits::c17();
    const auto small_faults = collapse_faults(small);
    ASSERT_LT(small_faults.size(), kMinFaultsPerShard);
    const auto patterns = random_patterns(small, 40, 1);
    for (const unsigned jobs : {1u, 4u, 8u, 0u}) {
        const auto r =
            fault_simulate_sharded(small, small_faults, patterns, jobs);
        EXPECT_EQ(r.effective_workers, 1u) << "jobs=" << jobs;
    }

    // A universe above the floor may shard — but never wider than asked,
    // and never so wide that a worker owns fewer than the floor.
    const Netlist big = circuits::comparator(96);
    const auto big_faults = collapse_faults(big);
    ASSERT_GT(big_faults.size(), 2 * kMinFaultsPerShard);
    const auto big_patterns = random_patterns(big, 12, 1);
    const auto r8 =
        fault_simulate_sharded(big, big_faults, big_patterns, 8);
    EXPECT_GE(r8.effective_workers, 1u);
    EXPECT_LE(r8.effective_workers, 8u);
    EXPECT_LE(r8.effective_workers,
              std::max<std::size_t>(1,
                                    big_faults.size() / kMinFaultsPerShard));
    // Whatever the clamp chose, the outcome is the serial one.
    const auto serial =
        fault_simulate_serial(big, big_faults, big_patterns);
    EXPECT_EQ(r8.detected_mask, serial.detected_mask);
    EXPECT_EQ(r8.detected_by, serial.detected_by);
}

TEST(GateCoverage, GradeNetlistSurfacesEffectiveWorkers) {
    GateGradeOptions opts;
    opts.jobs = 8;
    opts.max_patterns = 32;
    opts.atpg_top_up = false;
    // 34 faults < the 512-fault floor: the request for 8 workers is
    // honestly reported as the inline path.
    const auto graded = grade_netlist(circuits::c17(), opts);
    EXPECT_EQ(graded.effective_workers, 1u);
}

TEST(GateCoverage, ToCoverageRejectsMismatchedResult) {
    const Netlist net = circuits::c17();
    const auto faults = collapse_faults(net);
    FaultSimResult wrong;
    wrong.total_faults = 1;
    wrong.detected_mask.assign(1, false);
    wrong.detected_by.assign(1, std::nullopt);
    EXPECT_THROW((void)to_coverage(net, faults, wrong), SemanticError);
}

} // namespace
} // namespace ctk::gate
