// Plan-layer tests: a compiled plan must produce verdicts bit-identical
// to the interpreter it replaced — on both execution paths, across fresh
// backends, with measurement noise, and through the shared-plan campaign
// at any worker count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/campaign.hpp"
#include "core/grading.hpp"
#include "core/kb.hpp"
#include "core/plan.hpp"
#include "dut/catalogue.hpp"
#include "report/report.hpp"
#include "sim/fault_inject.hpp"
#include "sim/virtual_stand.hpp"

namespace ctk::core {
namespace {

const model::MethodRegistry kReg = model::MethodRegistry::builtin();

std::shared_ptr<sim::VirtualStand>
fresh_backend(const std::string& family, const stand::StandDescription& desc,
              sim::VirtualStandOptions options = {}) {
    return std::make_shared<sim::VirtualStand>(
        desc, dut::make_golden(family), options);
}

/// Fingerprint of one RunResult through the campaign fingerprint.
std::string fingerprint(const std::string& name, const RunResult& run) {
    CampaignJobResult job;
    job.name = name;
    job.run = run;
    return verdict_fingerprint(job);
}

TEST(Plan, HandlePathMatchesStringPathAndEngineForEveryFamily) {
    for (const auto& family : kb::families()) {
        const auto script = script::compile(kb::suite_for(family), kReg);
        const auto desc = kb::stand_for(family);
        const auto plan = CompiledPlan::compile(script, desc);

        TestEngine engine(desc, fresh_backend(family, desc));
        const auto via_engine = engine.run(script);

        auto strings_backend = fresh_backend(family, desc);
        const auto via_strings =
            plan.execute(*strings_backend, PlanPath::Strings);

        auto handles_backend = fresh_backend(family, desc);
        const auto via_handles =
            plan.execute(*handles_backend, PlanPath::Handles);

        EXPECT_EQ(fingerprint(family, via_strings),
                  fingerprint(family, via_engine))
            << family;
        EXPECT_EQ(fingerprint(family, via_handles),
                  fingerprint(family, via_strings))
            << family;
        EXPECT_TRUE(via_handles.passed()) << family;
    }
}

TEST(Plan, PathsDrawIdenticalNoiseSequences) {
    // With DVM noise enabled the sampling *order* becomes observable:
    // every reading draws from the backend's deterministic generator. The
    // handle path batches per tick, yet must visit checks in the same
    // order as the per-sample string path.
    sim::VirtualStandOptions noisy;
    noisy.dvm_noise = 0.05;
    noisy.seed = 987654;
    for (const auto& family : kb::families()) {
        const auto script = script::compile(kb::suite_for(family), kReg);
        const auto desc = kb::stand_for(family);
        const auto plan = CompiledPlan::compile(script, desc);

        auto a = fresh_backend(family, desc, noisy);
        auto b = fresh_backend(family, desc, noisy);
        EXPECT_EQ(fingerprint(family,
                              plan.execute(*a, PlanPath::Strings)),
                  fingerprint(family,
                              plan.execute(*b, PlanPath::Handles)))
            << family;
    }
}

TEST(Plan, ReusableAcrossFreshBackends) {
    const std::string family = "turn_signal";
    const auto desc = kb::stand_for(family);
    // Compiled through the campaign-layer helper: family_plan() must
    // bind against the same reference stand kb::stand_for() returns.
    const auto plan = family_plan(family);
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->stand_name(), desc.name());

    std::vector<std::string> prints;
    for (int i = 0; i < 3; ++i) {
        auto backend = fresh_backend(family, desc);
        prints.push_back(fingerprint(family, plan->execute(*backend)));
    }
    EXPECT_EQ(prints[0], prints[1]);
    EXPECT_EQ(prints[1], prints[2]);
}

TEST(Plan, ReusableOnTheSameBackendBackToBack) {
    // reset() between tests must leave channel ids valid: run the same
    // plan twice on ONE backend and once on a fresh one.
    const std::string family = "wiper";
    const auto script = script::compile(kb::suite_for(family), kReg);
    const auto desc = kb::stand_for(family);
    const auto plan = CompiledPlan::compile(script, desc);

    auto backend = fresh_backend(family, desc);
    const auto first = fingerprint(family, plan.execute(*backend));
    const auto second = fingerprint(family, plan.execute(*backend));
    auto fresh = fresh_backend(family, desc);
    const auto third = fingerprint(family, plan.execute(*fresh));
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, third);
}

TEST(Plan, ChannelTableIsDeduplicated) {
    // A signal sampled every tick of every step must still occupy one
    // channel slot per (resource, method, pins) triple.
    const auto script =
        script::compile(kb::suite_for("interior_light"), kReg);
    const auto desc = kb::stand_for("interior_light");
    const auto plan = CompiledPlan::compile(script, desc);

    ASSERT_EQ(plan.tests().size(), 1u);
    const auto& test = plan.tests().front();
    EXPECT_GT(test.channels.size(), 0u);
    std::size_t references = 0;
    for (const auto& step : test.steps) {
        references += step.stimuli.size();
        for (const auto& c : step.checks)
            if (!c.is_bits) ++references;
    }
    EXPECT_LT(test.channels.size(), references);
    for (std::size_t i = 0; i < test.channels.size(); ++i)
        for (std::size_t j = i + 1; j < test.channels.size(); ++j) {
            const bool same =
                test.channels[i].resource == test.channels[j].resource &&
                test.channels[i].method == test.channels[j].method &&
                test.channels[i].pins == test.channels[j].pins;
            EXPECT_FALSE(same) << i << " duplicates " << j;
        }
}

TEST(Plan, BackendResolveDeduplicatesTriples) {
    // Re-binding a plan on a long-lived backend must not grow the
    // channel table: the same triple resolves to the same id.
    const auto desc = kb::stand_for("interior_light");
    auto backend = fresh_backend("interior_light", desc);
    const std::vector<std::string> pins{"int_ill_f", "int_ill_r"};
    const auto a = backend->resolve("Ress1", "get_u", pins);
    EXPECT_EQ(backend->resolve("Ress1", "get_u", pins), a);
    EXPECT_NE(backend->resolve("Ress2", "get_u", pins), a);
    EXPECT_EQ(backend->resolve("Ress1", "get_u", pins), a);
}

TEST(Plan, CompileRejectsAStandMissingVariables) {
    const auto script =
        script::compile(kb::suite_for("interior_light"), kReg);
    try {
        (void)CompiledPlan::compile(script,
                                    stand::StandDescription("bare"));
        FAIL() << "compile must throw StandError";
    } catch (const StandError& e) {
        EXPECT_NE(std::string(e.what()).find("variable"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Plan, CompileTestRejectsUnknownName) {
    const auto script =
        script::compile(kb::suite_for("interior_light"), kReg);
    const auto desc = kb::stand_for("interior_light");
    EXPECT_THROW((void)CompiledPlan::compile_test(script, "no_such_test",
                                                  desc),
                 SemanticError);
}

TEST(Plan, SharedPlanCampaignMatchesLegacyCampaignAtOneAndEightWorkers) {
    // The ISSUE's acceptance criterion: compiled-plan verdicts equal the
    // legacy string-path campaign for all KB families at jobs=1 and
    // jobs=8. The legacy jobs carry no plan, so they run through
    // TestEngine (itself plan-backed) while the plan jobs share one
    // binding per family.
    auto run = [](std::vector<CampaignJob> jobs, unsigned workers) {
        CampaignOptions opts;
        opts.jobs = workers;
        CampaignRunner runner(opts);
        for (auto& job : jobs) runner.add(std::move(job));
        return runner.run_all();
    };

    const auto legacy = run(kb_campaign(), 1);
    for (unsigned workers : {1u, 8u}) {
        const auto shared = run(kb_plan_campaign(), workers);
        ASSERT_EQ(shared.jobs.size(), legacy.jobs.size()) << workers;
        EXPECT_EQ(verdict_fingerprint(shared),
                  verdict_fingerprint(legacy))
            << workers;
    }
}

TEST(Plan, RepetitionsShareOneCompiledPlanPerFamily) {
    const auto jobs = kb_plan_campaign(4);
    ASSERT_EQ(jobs.size(), kb::families().size() * 4);
    for (std::size_t f = 0; f < kb::families().size(); ++f) {
        const CompiledPlan* first = jobs[f * 4].plan.get();
        ASSERT_NE(first, nullptr);
        for (std::size_t r = 1; r < 4; ++r)
            EXPECT_EQ(jobs[f * 4 + r].plan.get(), first)
                << kb::families()[f];
    }

    CampaignOptions opts;
    opts.jobs = 4;
    CampaignRunner runner(opts);
    for (auto job : jobs) runner.add(std::move(job));
    const auto result = runner.run_all();
    EXPECT_TRUE(result.passed());
    // Every repetition of a family fingerprints identically modulo the
    // "#r" name suffix.
    for (std::size_t f = 0; f < kb::families().size(); ++f)
        for (std::size_t r = 1; r < 4; ++r)
            EXPECT_EQ(report::to_csv(result.jobs[f * 4 + r].run),
                      report::to_csv(result.jobs[f * 4].run));
}

TEST(Plan, EngineCompileProducesTheSamePlan) {
    const std::string family = "central_lock";
    const auto script = script::compile(kb::suite_for(family), kReg);
    const auto desc = kb::stand_for(family);
    TestEngine engine(desc, fresh_backend(family, desc));
    const auto plan = engine.compile(script);
    auto backend = fresh_backend(family, desc);
    EXPECT_EQ(fingerprint(family, plan.execute(*backend)),
              fingerprint(family, engine.run(script)));
}

TEST(Plan, SubsetExecutionEdgeCases) {
    // Two-test plan: duplicate the wiper suite's single test under a
    // second name so subsets have more than one index to select.
    const std::string family = "wiper";
    auto script = script::compile(kb::suite_for(family), kReg);
    ASSERT_EQ(script.tests.size(), 1u);
    auto again = script.tests.front();
    again.name += "_again";
    script.tests.push_back(std::move(again));
    const auto desc = kb::stand_for(family);
    const auto plan = CompiledPlan::compile(script, desc);
    ASSERT_EQ(plan.tests().size(), 2u);

    auto full_backend = fresh_backend(family, desc);
    const auto full = plan.execute(*full_backend);
    ASSERT_EQ(full.tests.size(), 2u);

    // Empty subset: a valid no-op run that keeps the header fields.
    auto backend = fresh_backend(family, desc);
    const auto none = plan.execute(*backend, std::vector<std::size_t>{});
    EXPECT_TRUE(none.tests.empty());
    EXPECT_EQ(none.script_name, full.script_name);
    EXPECT_EQ(none.stand_name, full.stand_name);

    // An out-of-range index throws ctk::Error naming plan and index.
    try {
        (void)plan.execute(*backend, std::vector<std::size_t>{0, 2});
        FAIL() << "subset execute must throw on index 2";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(full.script_name), std::string::npos) << what;
        EXPECT_NE(what.find("has no test index 2"), std::string::npos)
            << what;
    }

    // Duplicates and order: every occurrence restarts from reset, so
    // {1, 0, 1} yields three bit-exact slices in the requested order.
    auto dup_backend = fresh_backend(family, desc);
    const auto dup =
        plan.execute(*dup_backend, std::vector<std::size_t>{1, 0, 1});
    ASSERT_EQ(dup.tests.size(), 3u);
    EXPECT_EQ(detection_fingerprint(dup.tests[0]),
              detection_fingerprint(dup.tests[2]));
    EXPECT_EQ(detection_fingerprint(dup.tests[0]),
              detection_fingerprint(full.tests[1]));
    EXPECT_EQ(detection_fingerprint(dup.tests[1]),
              detection_fingerprint(full.tests[0]));

    // Subset-vs-full equality per test — the property the grade store's
    // single-pair replay stands on.
    for (std::size_t i = 0; i < plan.tests().size(); ++i) {
        auto b = fresh_backend(family, desc);
        const auto one = plan.execute(*b, std::vector<std::size_t>{i});
        ASSERT_EQ(one.tests.size(), 1u);
        EXPECT_EQ(detection_fingerprint(one.tests.front()),
                  detection_fingerprint(full.tests[i]))
            << "test " << i;
    }
}

TEST(Plan, StringAndHandleTiersAgreeUnderRandomFaultInjection) {
    // 100 seeded random fault specs per run, drawn over every kind —
    // including the drift and skew paths no fixed-universe test drives
    // through both tiers. The two execution paths must produce the
    // same detection fingerprint for every faulty DUT, exactly as they
    // do for the golden one: fault injection sits below the backend,
    // so the tier split must be invisible to it.
    Rng rng(0xd1ffe7ULL);
    const std::vector<std::string> families{"wiper", "central_lock",
                                            "turn_signal"};
    std::vector<sim::FaultKind> kinds{
        sim::FaultKind::PinStuckLow, sim::FaultKind::PinStuckHigh,
        sim::FaultKind::PinOffset,   sim::FaultKind::PinScale,
        sim::FaultKind::CanDrop,     sim::FaultKind::CanCorrupt,
        sim::FaultKind::TimingSkew};

    for (std::size_t trial = 0; trial < 100; ++trial) {
        const std::string& family =
            families[rng.next_below(families.size())];
        const auto setup = kb_grading_setup(family);
        const auto& surface_plan = *setup.plan;
        const auto surface = plan_fault_surface(surface_plan);

        sim::FaultSpec fault;
        fault.kind = kinds[rng.next_below(kinds.size())];
        switch (fault.kind) {
        case sim::FaultKind::CanDrop:
        case sim::FaultKind::CanCorrupt:
            fault.target = surface.can_signals[rng.next_below(
                surface.can_signals.size())];
            break;
        case sim::FaultKind::TimingSkew:
            fault.target = "clock";
            fault.magnitude = rng.next_range(0.4, 2.0);
            break;
        default:
            fault.target = surface.output_pins[rng.next_below(
                surface.output_pins.size())];
            if (fault.kind == sim::FaultKind::PinOffset)
                fault.magnitude = rng.next_range(-2.0, 2.0);
            else if (fault.kind == sim::FaultKind::PinScale)
                fault.magnitude = rng.next_range(0.2, 1.5);
            break;
        }

        auto strings_backend = std::make_shared<sim::VirtualStand>(
            setup.stand, std::make_shared<sim::FaultyDut>(
                             dut::make_golden(family), fault));
        auto handles_backend = std::make_shared<sim::VirtualStand>(
            setup.stand, std::make_shared<sim::FaultyDut>(
                             dut::make_golden(family), fault));
        const auto via_strings =
            surface_plan.execute(*strings_backend, PlanPath::Strings);
        const auto via_handles =
            surface_plan.execute(*handles_backend, PlanPath::Handles);
        EXPECT_EQ(detection_fingerprint(via_strings),
                  detection_fingerprint(via_handles))
            << family << "/" << fault.id() << " (trial " << trial << ")";
    }
}

} // namespace
} // namespace ctk::core
