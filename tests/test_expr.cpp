// Unit tests: the expression engine behind script parameters.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "expr/expr.hpp"

namespace ctk::expr {
namespace {

const Env kEnv{{"ubatt", 12.0}, {"x", 3.0}, {"y", -2.0}};

struct EvalCase {
    const char* text;
    double expected;
};

class ExprEval : public ::testing::TestWithParam<EvalCase> {};

TEST_P(ExprEval, Evaluates) {
    const auto& [text, expected] = GetParam();
    EXPECT_DOUBLE_EQ(eval(text, kEnv), expected) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExprEval,
    ::testing::Values(EvalCase{"1+2", 3.0},                 //
                      EvalCase{"2*3+4", 10.0},              // precedence
                      EvalCase{"2+3*4", 14.0},              //
                      EvalCase{"(2+3)*4", 20.0},            // parens
                      EvalCase{"10-4-3", 3.0},              // left assoc
                      EvalCase{"24/4/2", 3.0},              //
                      EvalCase{"2^3^2", 512.0},             // right assoc
                      EvalCase{"-3^2", -9.0},               // unary binds last
                      EvalCase{"--5", 5.0},                 //
                      EvalCase{"+7", 7.0},                  //
                      EvalCase{"1.5e2", 150.0},             // scientific
                      EvalCase{"0.5", 0.5}));

INSTANTIATE_TEST_SUITE_P(
    PaperFormulas, ExprEval,
    ::testing::Values(EvalCase{"(1.1*ubatt)", 13.2},  // the §3 listing
                      EvalCase{"(0.7*ubatt)", 8.4},   //
                      EvalCase{"(0*ubatt)", 0.0},     //
                      EvalCase{"(0.3*UBATT)", 3.6})); // case-insensitive

INSTANTIATE_TEST_SUITE_P(
    VariablesAndFunctions, ExprEval,
    ::testing::Values(EvalCase{"x*y", -6.0},              //
                      EvalCase{"min(x, 2, 7)", 2.0},      //
                      EvalCase{"max(x, ubatt)", 12.0},    //
                      EvalCase{"abs(y)", 2.0},            //
                      EvalCase{"clamp(x, 0, 2)", 2.0},    //
                      EvalCase{"floor(2.9)", 2.0},        //
                      EvalCase{"ceil(2.1)", 3.0},         //
                      EvalCase{"sqrt(x*x)", 3.0},         //
                      EvalCase{"min(1+1, 2*2)", 2.0}));

TEST(ExprParse, InfLiteral) {
    EXPECT_EQ(eval("INF", kEnv), std::numeric_limits<double>::infinity());
    EXPECT_EQ(eval("-INF", kEnv), -std::numeric_limits<double>::infinity());
}

TEST(ExprEvalSpecial, DivisionByZeroFollowsIeee) {
    EXPECT_TRUE(std::isinf(eval("1/0", kEnv)));
    EXPECT_TRUE(std::isinf(eval("-1/0", kEnv)));
}

TEST(ExprEvalSpecial, UnboundVariableThrows) {
    EXPECT_THROW((void)eval("nope+1", kEnv), SemanticError);
}

TEST(ExprEvalSpecial, SqrtOfNegativeThrows) {
    EXPECT_THROW((void)eval("sqrt(0-4)", kEnv), SemanticError);
}

class ExprParseErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprParseErrors, Throws) {
    EXPECT_THROW((void)parse(GetParam()), ParseError) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, ExprParseErrors,
                         ::testing::Values("", "   ", "1+", "(1+2", "1 2",
                                           "*3", "min(", "2..5", "a b"));

TEST(ExprParseErrors2, UnknownFunctionThrowsAtParseTime) {
    EXPECT_THROW((void)parse("frob(1)"), SemanticError);
}

TEST(ExprParseErrors2, WrongArityThrowsAtParseTime) {
    EXPECT_THROW((void)parse("abs(1,2)"), SemanticError);
    EXPECT_THROW((void)parse("clamp(1)"), SemanticError);
}

TEST(ExprVariables, CollectsFreeVariablesLowercased) {
    const auto vars = parse("(1.1*UBATT) + min(x, Y)")->variables();
    EXPECT_EQ(vars, (std::set<std::string>{"ubatt", "x", "y"}));
    EXPECT_TRUE(parse("1+2")->variables().empty());
}

class ExprToStringRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprToStringRoundTrip, ReparseGivesSameValue) {
    const ExprPtr e = parse(GetParam());
    const ExprPtr again = parse(e->to_string());
    EXPECT_DOUBLE_EQ(e->eval(kEnv), again->eval(kEnv)) << e->to_string();
    EXPECT_EQ(e->to_string(), again->to_string());
}

INSTANTIATE_TEST_SUITE_P(Forms, ExprToStringRoundTrip,
                         ::testing::Values("(1.1*ubatt)", "1+2*3",
                                           "min(x,y,3)", "-x^2",
                                           "clamp(x,0,ubatt)", "2^3^2",
                                           "(x+y)/(x-y)"));

TEST(ExprFold, CollapsesConstantSubtrees) {
    const ExprPtr folded = fold(parse("2*3 + x"));
    // The left operand should now be a literal 6.
    EXPECT_EQ(folded->to_string(), "(6+x)");
    EXPECT_DOUBLE_EQ(folded->eval(kEnv), 9.0);
}

TEST(ExprFold, FullyConstantBecomesNumber) {
    const ExprPtr folded = fold(parse("2*(3+4)"));
    EXPECT_EQ(folded->kind(), Expr::Kind::Number);
    EXPECT_DOUBLE_EQ(folded->eval(Env{}), 14.0);
}

TEST(ExprFold, KeepsVariableParts) {
    const ExprPtr folded = fold(parse("min(1+1, x)"));
    EXPECT_EQ(folded->to_string(), "min(2,x)");
}

TEST(ExprConstant, BuildsLiteralNode) {
    EXPECT_DOUBLE_EQ(constant(4.5)->eval(Env{}), 4.5);
    EXPECT_EQ(constant(4.5)->kind(), Expr::Kind::Number);
}

TEST(EnvTest, CaseInsensitiveSetGet) {
    Env env;
    env.set("UBatt", 13.5);
    EXPECT_TRUE(env.has("ubatt"));
    EXPECT_DOUBLE_EQ(env.get("UBATT"), 13.5);
    EXPECT_THROW((void)env.get("other"), SemanticError);
}

} // namespace
} // namespace ctk::expr
