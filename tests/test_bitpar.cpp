// Bit-parallel fault evaluation (DESIGN.md §14): the packed paths must
// be bit-identical to their scalar references on randomized inputs.
//
// KB side: LockstepFamily::evaluate_block against the scalar
// evaluate(), lane counts straddling the 64-lane word boundary
// (1, W-1, W, W+1, 3W+tail), duplicate lanes, error lanes, and
// concurrent read-only evaluation (the TSan job runs this binary —
// eval_pass keeps thread-local scratch that must stay race-free).
//
// Gate side: fault_simulate_packed against fault_simulate_serial on
// every builtin circuit, fault-slice sizes straddling the word
// boundary, the sequential/multi-frame fallback, and empty edges.
//
// Under CTK_BITPAR_SCALAR both packed paths collapse to their scalar
// twins and every expectation here still holds — the suite is what
// keeps the fallback from rotting.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/grading.hpp"
#include "core/kb.hpp"
#include "core/lockstep.hpp"
#include "gate/circuits.hpp"
#include "gate/faults.hpp"
#include "gate/faultsim.hpp"
#include "report/report.hpp"

namespace ctk {
namespace {

// The word width the packed paths lane against; lane counts in the
// tests straddle it on both sides.
constexpr std::size_t kW = 64;

void expect_eval_eq(const core::LockstepEval& got,
                    const core::LockstepEval& want,
                    const std::string& where) {
    EXPECT_EQ(got.error, want.error) << where;
    EXPECT_EQ(got.error_message, want.error_message) << where;
    EXPECT_EQ(got.differs, want.differs) << where;
    EXPECT_EQ(got.flips, want.flips) << where;
    EXPECT_EQ(got.first_flip, want.first_flip) << where;
}

// One shared lockstep engine for the wiper family on the scaled
// universe — captures are whole-suite drives, so they run once for the
// whole KB test group.
class BitparLockstep : public ::testing::Test {
protected:
    struct State {
        core::FamilyGradingSetup setup;
        core::RunResult golden;
        std::unique_ptr<core::LockstepFamily> engine;
    };

    static void SetUpTestSuite() {
        state_ = new State;
        state_->setup = core::kb_grading_setup(
            "wiper", {}, sim::UniverseOptions::scaled());
        auto backend = state_->setup.make_golden(state_->setup.stand);
        ASSERT_NE(backend, nullptr);
        state_->golden = state_->setup.plan->execute(*backend);

        core::LockstepFamily::Config cfg;
        cfg.plan = state_->setup.plan;
        cfg.golden = &state_->golden;
        cfg.make_device = state_->setup.make_device;
        cfg.universe = &state_->setup.universe;
        if (state_->setup.stand.variables().has("ubatt"))
            cfg.ubatt = state_->setup.stand.variables().get("ubatt");
        cfg.eval_tests.resize(state_->setup.universe.size());
        for (auto& tests : cfg.eval_tests)
            for (std::size_t t = 0; t < state_->setup.plan->tests().size();
                 ++t)
                tests.push_back(t);
        state_->engine = core::LockstepFamily::build(std::move(cfg));
        ASSERT_NE(state_->engine, nullptr);
        for (std::size_t ci = 0; ci < state_->engine->capture_count(); ++ci)
            state_->engine->run_capture(ci);
        ASSERT_TRUE(state_->engine->validate());
    }

    static void TearDownTestSuite() {
        delete state_;
        state_ = nullptr;
    }

    static const core::LockstepFamily& engine() { return *state_->engine; }
    static std::size_t universe_size() {
        return state_->setup.universe.size();
    }
    static std::size_t test_count() {
        return state_->setup.plan->tests().size();
    }

private:
    static State* state_;
};

BitparLockstep::State* BitparLockstep::state_ = nullptr;

TEST_F(BitparLockstep, LaneCountsStraddlingTheWordBoundary) {
    const std::size_t sizes[] = {1, kW - 1, kW, kW + 1, 3 * kW + 7};
    Rng rng(0xb17);
    for (const std::size_t n : sizes) {
        // Random fault indices, duplicates allowed — evaluate_block's
        // contract is per-lane, not per-set.
        std::vector<std::size_t> faults;
        for (std::size_t i = 0; i < n; ++i)
            faults.push_back(
                static_cast<std::size_t>(rng.next_below(universe_size())));
        for (std::size_t t = 0; t < test_count(); ++t) {
            std::vector<core::LockstepEval> block;
            engine().evaluate_block(t, faults, block);
            ASSERT_EQ(block.size(), faults.size());
            for (std::size_t i = 0; i < faults.size(); ++i)
                expect_eval_eq(block[i], engine().evaluate(faults[i], t),
                               "lanes=" + std::to_string(n) + " test=" +
                                   std::to_string(t) + " lane=" +
                                   std::to_string(i));
        }
    }
}

TEST_F(BitparLockstep, UnscheduledTestErrorsLaneForLane) {
    // A test index outside every lane's schedule: the block path must
    // report the exact scalar error per lane, not throw or misgroup.
    const std::size_t bad_test = test_count();
    std::vector<std::size_t> faults;
    for (std::size_t i = 0; i < kW + 3; ++i)
        faults.push_back(i % universe_size());
    std::vector<core::LockstepEval> block;
    engine().evaluate_block(bad_test, faults, block);
    ASSERT_EQ(block.size(), faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        EXPECT_TRUE(block[i].error) << i;
        expect_eval_eq(block[i], engine().evaluate(faults[i], bad_test),
                       "lane=" + std::to_string(i));
    }
}

TEST_F(BitparLockstep, ConcurrentBlocksMatchScalar) {
    // Evaluation is read-only and must be race-free from any number of
    // threads (the engine's documented contract; eval_pass keeps
    // thread-local scratch). The TSan CI job runs this test.
    const unsigned n_threads = 4;
    std::vector<std::vector<std::size_t>> lanes(n_threads);
    std::vector<std::vector<core::LockstepEval>> blocks(n_threads);
    for (unsigned w = 0; w < n_threads; ++w) {
        Rng rng(0x7157 + w);
        for (std::size_t i = 0; i < 2 * kW + 9; ++i)
            lanes[w].push_back(
                static_cast<std::size_t>(rng.next_below(universe_size())));
    }
    std::vector<std::thread> pool;
    for (unsigned w = 0; w < n_threads; ++w)
        pool.emplace_back([w, &lanes, &blocks] {
            engine().evaluate_block(w % 2, lanes[w], blocks[w]);
        });
    for (auto& th : pool) th.join();
    for (unsigned w = 0; w < n_threads; ++w) {
        ASSERT_EQ(blocks[w].size(), lanes[w].size()) << w;
        for (std::size_t i = 0; i < lanes[w].size(); ++i)
            expect_eval_eq(blocks[w][i],
                           engine().evaluate(lanes[w][i], w % 2),
                           "thread=" + std::to_string(w) + " lane=" +
                               std::to_string(i));
    }
}

TEST(BitparGrading, PackedAndScalarLockstepShareTheFingerprint) {
    // End-to-end: whole-campaign outcome fingerprint and coverage CSV
    // must be identical between the packed block path, the scalar lane
    // walk, and per-fault grading — jobs=8 keeps the packed path under
    // the TSan job's eye on the real worker pool.
    const std::vector<std::string> families{"wiper", "central_lock",
                                            "turn_signal"};
    auto grade = [&](bool lockstep, bool packed) {
        core::GradingOptions opts;
        opts.jobs = 8;
        opts.lockstep = lockstep;
        opts.lockstep_packed = packed;
        core::GradingCampaign grading(opts);
        for (const auto& family : families)
            grading.add(core::kb_grading_setup(family));
        return grading.run_all();
    };
    const auto reference = grade(false, true);
    const auto want_fp = core::outcome_fingerprint(reference);
    const auto want_csv = report::coverage_to_csv(reference.to_coverage());
    for (const bool packed : {true, false}) {
        const auto lk = grade(true, packed);
        EXPECT_EQ(core::outcome_fingerprint(lk), want_fp)
            << "packed=" << packed;
        EXPECT_EQ(report::coverage_to_csv(lk.to_coverage()), want_csv)
            << "packed=" << packed;
    }
}

// ---- gate side ---------------------------------------------------

std::vector<gate::Pattern> random_patterns(const gate::Netlist& net,
                                           std::size_t count,
                                           std::size_t frames,
                                           std::uint64_t seed) {
    Rng rng(seed);
    std::vector<gate::Pattern> patterns;
    for (std::size_t p = 0; p < count; ++p) {
        gate::Pattern pat;
        for (std::size_t f = 0; f < frames; ++f) {
            std::vector<bool> frame(net.inputs().size());
            for (auto&& v : frame) v = rng.next_bool();
            pat.frames.push_back(std::move(frame));
        }
        patterns.push_back(std::move(pat));
    }
    return patterns;
}

void expect_gate_eq(const gate::FaultSimResult& got,
                    const gate::FaultSimResult& want,
                    const std::string& where) {
    EXPECT_EQ(got.total_faults, want.total_faults) << where;
    EXPECT_EQ(got.detected, want.detected) << where;
    EXPECT_EQ(got.detected_mask, want.detected_mask) << where;
    EXPECT_EQ(got.detected_by, want.detected_by) << where;
}

TEST(BitparGate, EveryBuiltinMatchesSerialAtEveryWorkerCount) {
    struct Work {
        std::string name;
        gate::Netlist net;
        std::size_t frames;
    };
    std::vector<Work> circuits;
    circuits.push_back({"c17", gate::circuits::c17(), 1});
    circuits.push_back({"adder8", gate::circuits::ripple_adder(8), 1});
    circuits.push_back({"cmp8", gate::circuits::comparator(8), 1});
    circuits.push_back({"mux8", gate::circuits::mux_tree(3), 1});
    circuits.push_back({"parity16", gate::circuits::parity_tree(16), 1});
    circuits.push_back({"alu2", gate::circuits::alu(2), 1});
    // Sequential: multi-frame patterns keep per-lane state, which the
    // packed engine serves through its per-fault replay fallback.
    circuits.push_back({"counter4", gate::circuits::counter(4), 3});

    for (const auto& w : circuits) {
        const auto faults = gate::collapse_faults(w.net);
        const auto patterns = random_patterns(w.net, 24, w.frames, 0xc1c);
        const auto serial =
            gate::fault_simulate_serial(w.net, faults, patterns);
        for (const unsigned jobs : {1u, 4u, 8u})
            expect_gate_eq(
                gate::fault_simulate_packed(w.net, faults, patterns, jobs),
                serial, w.name + " jobs=" + std::to_string(jobs));
    }
}

TEST(BitparGate, FaultSliceSizesStraddlingTheWordBoundary) {
    const auto net = gate::circuits::comparator(8);
    const auto all = gate::collapse_faults(net);
    ASSERT_GT(all.size(), 3 * kW + 7);
    const auto patterns = random_patterns(net, 32, 1, 0x51ce);
    const std::size_t sizes[] = {1, kW - 1, kW, kW + 1, 3 * kW + 7};
    for (const std::size_t n : sizes) {
        const std::vector<gate::Fault> slice(
            all.begin(), all.begin() + static_cast<std::ptrdiff_t>(n));
        expect_gate_eq(gate::fault_simulate_packed(net, slice, patterns, 4),
                       gate::fault_simulate_serial(net, slice, patterns),
                       "faults=" + std::to_string(n));
    }
}

TEST(BitparGate, MultiFramePatternsFallBackBitIdentically) {
    const auto net = gate::circuits::parity_tree(16);
    const auto faults = gate::collapse_faults(net);
    const auto patterns = random_patterns(net, 16, 2, 0xf2a);
    expect_gate_eq(gate::fault_simulate_packed(net, faults, patterns, 4),
                   gate::fault_simulate_serial(net, faults, patterns),
                   "parity16 2-frame");
}

TEST(BitparGate, EmptyUniverseAndEmptyPatterns) {
    const auto net = gate::circuits::c17();
    const auto faults = gate::collapse_faults(net);
    const auto patterns = random_patterns(net, 8, 1, 0xe);

    expect_gate_eq(gate::fault_simulate_packed(net, {}, patterns, 4),
                   gate::fault_simulate_serial(net, {}, patterns),
                   "no faults");
    expect_gate_eq(gate::fault_simulate_packed(net, faults, {}, 4),
                   gate::fault_simulate_serial(net, faults, {}),
                   "no patterns");
}

} // namespace
} // namespace ctk
