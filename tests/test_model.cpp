// Unit tests: the stand-independent data model and sheet conversion.
#include <gtest/gtest.h>

#include <limits>

#include "model/paper.hpp"
#include "model/sheets.hpp"
#include "tabular/workbook.hpp"

namespace ctk::model {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(MethodRegistry, BuiltinMethodsPresent) {
    const auto reg = MethodRegistry::builtin();
    EXPECT_TRUE(reg.find("put_r")->is_put());
    EXPECT_TRUE(reg.find("get_u")->is_get());
    EXPECT_EQ(reg.find("get_u")->attribute, "u");
    EXPECT_EQ(reg.find("put_can")->attr_type, AttrType::Bits);
    EXPECT_EQ(reg.find("nope"), nullptr);
    EXPECT_THROW((void)reg.require("nope"), SemanticError);
}

TEST(MethodRegistry, LookupIsCaseInsensitive) {
    const auto reg = MethodRegistry::builtin();
    EXPECT_NE(reg.find("GET_U"), nullptr);
}

TEST(MethodRegistry, AddReplacesByName) {
    auto reg = MethodRegistry::empty();
    reg.add({"put_x", MethodKind::Put, "x", AttrType::Real, "X"});
    reg.add({"PUT_X", MethodKind::Put, "x2", AttrType::Real, "X"});
    ASSERT_EQ(reg.all().size(), 1u);
    EXPECT_EQ(reg.find("put_x")->attribute, "x2");
}

TEST(Bits, ParseAndFormat) {
    const auto bits = parse_bits("0001B");
    ASSERT_TRUE(bits.has_value());
    EXPECT_EQ(bits->size(), 4u);
    EXPECT_EQ(format_bits(*bits), "0001B");
    EXPECT_TRUE(parse_bits("1").has_value()); // suffix optional
    EXPECT_FALSE(parse_bits("").has_value());
    EXPECT_FALSE(parse_bits("B").has_value());
    EXPECT_FALSE(parse_bits("012B").has_value());
}

TEST(StatusDefTest, PutValuePrefersNominal) {
    StatusDef d;
    d.min = 2.0;
    d.max = 4.0;
    EXPECT_DOUBLE_EQ(*d.put_value(), 3.0); // midpoint
    d.nom = 2.5;
    EXPECT_DOUBLE_EQ(*d.put_value(), 2.5);
}

TEST(StatusTable, DuplicateAndEmptyNamesRejected) {
    StatusTable t;
    StatusDef d;
    d.name = "A";
    d.method = "put_r";
    d.nom = 1.0;
    t.add(d);
    EXPECT_THROW(t.add(d), SemanticError);
    StatusDef e;
    EXPECT_THROW(t.add(e), SemanticError);
}

TEST(StatusTable, LookupPrefersExactCaseThenInsensitive) {
    StatusTable t;
    StatusDef lo;
    lo.name = "Lo";
    lo.method = "get_u";
    lo.min = 0.0;
    lo.max = 0.3;
    t.add(lo);
    EXPECT_EQ(t.find("Lo")->name, "Lo");
    EXPECT_EQ(t.find("LO")->name, "Lo");
    EXPECT_EQ(t.find("zz"), nullptr);
}

TEST(StatusTable, ValidateCatchesBadDefinitions) {
    const auto reg = MethodRegistry::builtin();

    auto make_table = [](StatusDef d) {
        StatusTable t;
        t.add(std::move(d));
        return t;
    };

    StatusDef unknown;
    unknown.name = "X";
    unknown.method = "frob";
    EXPECT_THROW(make_table(unknown).validate(reg), SemanticError);

    StatusDef no_value;
    no_value.name = "X";
    no_value.method = "put_r";
    EXPECT_THROW(make_table(no_value).validate(reg), SemanticError);

    StatusDef no_limits;
    no_limits.name = "X";
    no_limits.method = "get_u";
    EXPECT_THROW(make_table(no_limits).validate(reg), SemanticError);

    StatusDef crossed;
    crossed.name = "X";
    crossed.method = "get_u";
    crossed.min = 2.0;
    crossed.max = 1.0;
    EXPECT_THROW(make_table(crossed).validate(reg), SemanticError);

    StatusDef bad_bits;
    bad_bits.name = "X";
    bad_bits.method = "put_can";
    bad_bits.data = "02B";
    EXPECT_THROW(make_table(bad_bits).validate(reg), SemanticError);

    StatusDef wrong_attr;
    wrong_attr.name = "X";
    wrong_attr.method = "get_u";
    wrong_attr.attribute = "r";
    wrong_attr.min = 0.0;
    EXPECT_THROW(make_table(wrong_attr).validate(reg), SemanticError);

    StatusDef negative_d;
    negative_d.name = "X";
    negative_d.method = "get_u";
    negative_d.min = 0.0;
    negative_d.d1 = -1.0;
    EXPECT_THROW(make_table(negative_d).validate(reg), SemanticError);
}

TEST(SignalSheetTest, DuplicateSignalRejected) {
    SignalSheet s;
    s.add({"A", SignalDirection::Input, SignalKind::Pin, {}, ""});
    EXPECT_THROW(
        s.add({"a", SignalDirection::Input, SignalKind::Pin, {}, ""}),
        SemanticError);
}

TEST(SignalTest, EffectivePinsDefaultToName) {
    Signal s{"INT_ILL", SignalDirection::Output, SignalKind::Pin,
             {"F", "R"}, ""};
    EXPECT_EQ(s.effective_pins(), (std::vector<std::string>{"F", "R"}));
    Signal t{"DS_FL", SignalDirection::Input, SignalKind::Pin, {}, ""};
    EXPECT_EQ(t.effective_pins(), (std::vector<std::string>{"DS_FL"}));
}

// ---------------------------------------------------------------------------
// The paper fixture
// ---------------------------------------------------------------------------

TEST(PaperFixture, StatusTableMatchesTable2) {
    const StatusTable t = paper::status_table();
    ASSERT_EQ(t.statuses().size(), 7u);

    const StatusDef& ho = t.require("Ho");
    EXPECT_EQ(ho.method, "get_u");
    EXPECT_EQ(ho.var, "UBATT");
    EXPECT_DOUBLE_EQ(*ho.min, 0.7);
    EXPECT_DOUBLE_EQ(*ho.max, 1.1);

    const StatusDef& off = t.require("Off");
    EXPECT_EQ(off.method, "put_can");
    EXPECT_EQ(off.data, "0001B");

    const StatusDef& closed = t.require("Closed");
    EXPECT_EQ(*closed.nom, kInf);
    EXPECT_DOUBLE_EQ(*closed.min, 5000.0);
}

TEST(PaperFixture, TestSheetMatchesTable1) {
    const TestCase t = paper::int_ill_test();
    ASSERT_EQ(t.steps.size(), 10u);
    EXPECT_DOUBLE_EQ(t.steps[0].dt, 0.5);
    EXPECT_DOUBLE_EQ(t.steps[7].dt, 280.0);
    EXPECT_DOUBLE_EQ(t.steps[8].dt, 25.0);
    EXPECT_EQ(*t.steps[0].status_of("IGN_ST"), "Off");
    EXPECT_EQ(*t.steps[4].status_of("NIGHT"), "1");
    EXPECT_EQ(*t.steps[4].status_of("INT_ILL"), "Ho");
    EXPECT_EQ(t.steps[7].status_of("DS_FL"), nullptr); // sparse cell
    EXPECT_EQ(t.steps[9].remark, "off after 300s");
    // Step timing encodes the 300 s timeout: steps 6..8 span 305.5 s.
    EXPECT_GT(t.steps[6].dt + t.steps[7].dt + t.steps[8].dt,
              paper::kIlluminationTimeoutS);
}

TEST(PaperFixture, SuiteValidates) {
    EXPECT_NO_THROW((void)paper::suite());
}

TEST(PaperFixture, UsedSignalsInFirstUseOrder) {
    const auto used = paper::int_ill_test().used_signals();
    ASSERT_EQ(used.size(), 5u);
    EXPECT_EQ(used[0], "IGN_ST");
    EXPECT_EQ(used[4], "INT_ILL");
}

TEST(SuiteValidation, CatchesCrossReferences) {
    const auto reg = MethodRegistry::builtin();

    // put status on an output signal
    TestSuite s = paper::suite();
    s.tests[0].steps[0].assignments.push_back({"INT_ILL", "Open"});
    EXPECT_THROW(s.validate(reg), SemanticError);

    // get status on an input signal
    TestSuite s2 = paper::suite();
    s2.tests[0].steps[0].assignments.push_back({"DS_FL", "Ho"});
    EXPECT_THROW(s2.validate(reg), SemanticError);

    // bus method on a pin signal
    TestSuite s3 = paper::suite();
    s3.tests[0].steps[0].assignments.push_back({"DS_FL", "Off"});
    EXPECT_THROW(s3.validate(reg), SemanticError);

    // unknown status
    TestSuite s4 = paper::suite();
    s4.tests[0].steps[0].assignments.push_back({"DS_FL", "Nope"});
    EXPECT_THROW(s4.validate(reg), SemanticError);

    // unknown signal
    TestSuite s5 = paper::suite();
    s5.tests[0].steps[0].assignments.push_back({"GHOST", "Open"});
    EXPECT_THROW(s5.validate(reg), SemanticError);

    // non-positive dwell
    TestSuite s6 = paper::suite();
    s6.tests[0].steps[3].dt = 0.0;
    EXPECT_THROW(s6.validate(reg), SemanticError);

    // non-increasing step numbers
    TestSuite s7 = paper::suite();
    s7.tests[0].steps[3].index = 1;
    EXPECT_THROW(s7.validate(reg), SemanticError);

    // empty test
    TestSuite s8 = paper::suite();
    s8.tests[0].steps.clear();
    EXPECT_THROW(s8.validate(reg), SemanticError);
}

// ---------------------------------------------------------------------------
// Sheet conversion
// ---------------------------------------------------------------------------

TEST(Sheets, PaperWorkbookTextParsesToSuite) {
    const auto wb = tabular::Workbook::parse_multi(paper::workbook_text());
    const TestSuite s = suite_from_workbook(wb, "paper_int_ill");
    EXPECT_NO_THROW(s.validate(MethodRegistry::builtin()));

    const TestSuite ref = paper::suite();
    ASSERT_EQ(s.tests.size(), 1u);
    ASSERT_EQ(s.tests[0].steps.size(), ref.tests[0].steps.size());
    for (std::size_t i = 0; i < ref.tests[0].steps.size(); ++i) {
        const auto& a = s.tests[0].steps[i];
        const auto& b = ref.tests[0].steps[i];
        EXPECT_EQ(a.index, b.index) << "step " << i;
        EXPECT_DOUBLE_EQ(a.dt, b.dt) << "step " << i;
        ASSERT_EQ(a.assignments.size(), b.assignments.size()) << "step " << i;
        for (std::size_t j = 0; j < a.assignments.size(); ++j) {
            EXPECT_EQ(a.assignments[j].signal, b.assignments[j].signal);
            EXPECT_EQ(a.assignments[j].status, b.assignments[j].status);
        }
    }
    // Status table: spot-check the ×UBATT limits survived the comma locale.
    EXPECT_DOUBLE_EQ(*s.statuses.require("Ho").min, 0.7);
    EXPECT_DOUBLE_EQ(*s.statuses.require("Lo").max, 0.3);
    EXPECT_EQ(*s.statuses.require("Closed").nom, kInf);
}

TEST(Sheets, SuiteToWorkbookRoundTrips) {
    const TestSuite ref = paper::suite();
    const auto wb = suite_to_workbook(ref);
    const TestSuite back = suite_from_workbook(wb, ref.name);
    EXPECT_NO_THROW(back.validate(MethodRegistry::builtin()));
    ASSERT_EQ(back.tests.size(), ref.tests.size());
    EXPECT_EQ(back.tests[0].steps.size(), ref.tests[0].steps.size());
    EXPECT_EQ(back.statuses.statuses().size(), ref.statuses.statuses().size());
    EXPECT_EQ(back.signals.signals().size(), ref.signals.signals().size());
    EXPECT_EQ(back.signals.require("INT_ILL").pins,
              (std::vector<std::string>{"INT_ILL_F", "INT_ILL_R"}));
}

TEST(Sheets, MissingHeaderColumnsThrow) {
    tabular::Sheet s("bad");
    s.add_row({"nothing", "here"});
    EXPECT_THROW((void)signal_sheet_from_sheet(s), SemanticError);
    EXPECT_THROW((void)status_table_from_sheet(s), SemanticError);
    EXPECT_THROW((void)test_case_from_sheet(s), SemanticError);
}

TEST(Sheets, TestSheetRequiresNumericSteps) {
    tabular::Sheet s("t");
    s.add_row({"test step", "dt", "SIG"});
    s.add_row({"zero", "0,5", "Open"});
    EXPECT_THROW((void)test_case_from_sheet(s), SemanticError);
}

TEST(Sheets, TestSheetRequiresDt) {
    tabular::Sheet s("t");
    s.add_row({"test step", "dt", "SIG"});
    s.add_row({"0", "", "Open"});
    EXPECT_THROW((void)test_case_from_sheet(s), SemanticError);
}

TEST(Sheets, WorkbookWithoutTestsThrows) {
    const auto wb = tabular::Workbook::parse_multi(
        "#sheet signals\nsignal;direction\nA;in\n"
        "#sheet status\nstatus;method\n");
    EXPECT_THROW((void)suite_from_workbook(wb, "x"), SemanticError);
}

} // namespace
} // namespace ctk::model
