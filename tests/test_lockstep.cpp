// Batch-lockstep KB grading (core/lockstep, DESIGN.md §12): the engine
// must be byte-identical to per-fault grading — outcome fingerprint AND
// coverage CSV — at every worker count and block size, cold and warm,
// and must fall back to per-fault jobs whenever it cannot replicate a
// family's execution environment.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/gradestore.hpp"
#include "core/grading.hpp"
#include "core/kb.hpp"
#include "report/report.hpp"

namespace ctk::core {
namespace {

// interior_light's 6,180-tick suite dominates wall clock; three short
// families exercise every code path at a fraction of the cost.
const std::vector<std::string> kFamilies{"wiper", "central_lock",
                                         "turn_signal"};

GradingResult grade(const std::vector<std::string>& families, unsigned jobs,
                    bool lockstep, GradeStore* store = nullptr,
                    std::size_t block = 0) {
    GradingOptions opts;
    opts.jobs = jobs;
    opts.lockstep = lockstep;
    opts.block = block;
    opts.store = store;
    GradingCampaign grading(opts);
    for (const auto& family : families)
        grading.add(kb_grading_setup(family));
    return grading.run_all();
}

std::string csv_of(const GradingResult& result) {
    return report::coverage_to_csv(result.to_coverage());
}

TEST(Lockstep, ColdMatchesPerFaultAtEveryWorkerCount) {
    const auto reference = grade(kFamilies, 1, false);
    EXPECT_EQ(reference.lockstep_captures, 0u);
    EXPECT_EQ(reference.lockstep_blocks, 0u);
    EXPECT_EQ(reference.lockstep_lanes, 0u);
    const auto want_fp = outcome_fingerprint(reference);
    const auto want_csv = csv_of(reference);

    for (const unsigned jobs : {1u, 4u, 8u}) {
        const auto lk = grade(kFamilies, jobs, true);
        EXPECT_EQ(outcome_fingerprint(lk), want_fp) << "jobs=" << jobs;
        EXPECT_EQ(csv_of(lk), want_csv) << "jobs=" << jobs;
        // All three families are engine-eligible: every fault is a
        // lockstep lane, captures cover the variant set, and at least
        // one block ran.
        EXPECT_EQ(lk.lockstep_lanes, lk.fault_count()) << "jobs=" << jobs;
        EXPECT_GT(lk.lockstep_captures, 0u) << "jobs=" << jobs;
        EXPECT_GT(lk.lockstep_blocks, 0u) << "jobs=" << jobs;
        // Variant decomposition is the engine's reason to exist: far
        // fewer captured suite drives than faults.
        EXPECT_LT(lk.lockstep_captures, lk.fault_count())
            << "jobs=" << jobs;
    }
}

TEST(Lockstep, BlockSizeIsOutcomeInvariant) {
    const auto reference = grade({"wiper"}, 2, false);
    const auto want_fp = outcome_fingerprint(reference);
    for (const std::size_t block : {std::size_t{1}, std::size_t{3},
                                    std::size_t{100000}}) {
        const auto lk = grade({"wiper"}, 2, true, nullptr, block);
        EXPECT_EQ(outcome_fingerprint(lk), want_fp) << "block=" << block;
    }
    // block=1 shatters into one block per lane; a huge block packs the
    // whole family into one job.
    const auto fine = grade({"wiper"}, 1, true, nullptr, 1);
    EXPECT_EQ(fine.lockstep_blocks, fine.lockstep_lanes);
    const auto coarse = grade({"wiper"}, 1, true, nullptr, 100000);
    EXPECT_EQ(coarse.lockstep_blocks, 1u);
}

TEST(Lockstep, EnginesAreInterchangeableThroughTheStore) {
    const auto reference = grade(kFamilies, 1, false);
    const auto want_fp = outcome_fingerprint(reference);
    const auto want_csv = csv_of(reference);

    for (const bool seed_with_lockstep : {false, true}) {
        GradeStore store;
        (void)grade(kFamilies, 4, seed_with_lockstep, &store);
        store.stats() = {};
        // Warm replay with the OTHER engine: every (fault, test) pair is
        // served from the store, whichever engine wrote it.
        const auto warm =
            grade(kFamilies, 4, !seed_with_lockstep, &store);
        EXPECT_EQ(outcome_fingerprint(warm), want_fp)
            << "seeded by "
            << (seed_with_lockstep ? "lockstep" : "per-fault");
        EXPECT_EQ(csv_of(warm), want_csv);
        EXPECT_EQ(store.stats().faults_skipped, warm.fault_count());
        EXPECT_EQ(store.stats().faults_replayed, 0u);
        if (!seed_with_lockstep) {
            // The warm run was the lockstep one: fully cached lanes
            // capture no traces and queue no blocks.
            EXPECT_EQ(warm.lockstep_captures, 0u);
            EXPECT_EQ(warm.lockstep_blocks, 0u);
            EXPECT_EQ(warm.lockstep_lanes, 0u);
        }
    }
}

TEST(Lockstep, FamilyWithoutDeviceFactoryFallsBackPerFault) {
    const auto reference = grade(kFamilies, 2, false);

    GradingOptions opts;
    opts.jobs = 2;
    opts.lockstep = true;
    GradingCampaign grading(opts);
    for (const auto& family : kFamilies) {
        auto setup = kb_grading_setup(family);
        setup.make_device = nullptr; // custom faulty backend, say
        grading.add(std::move(setup));
    }
    const auto result = grading.run_all();
    EXPECT_EQ(outcome_fingerprint(result), outcome_fingerprint(reference));
    EXPECT_EQ(result.lockstep_captures, 0u);
    EXPECT_EQ(result.lockstep_blocks, 0u);
    EXPECT_EQ(result.lockstep_lanes, 0u);
}

TEST(Lockstep, MixedEngineAndPerFaultFamiliesShareOneRun) {
    GradingOptions opts;
    opts.jobs = 4;
    opts.lockstep = true;
    GradingCampaign grading(opts);
    auto per_fault = kb_grading_setup("central_lock");
    per_fault.make_device = nullptr;
    grading.add(std::move(per_fault));
    grading.add(kb_grading_setup("wiper"));
    const auto mixed = grading.run_all();

    const auto reference = grade({"central_lock", "wiper"}, 1, false);
    EXPECT_EQ(outcome_fingerprint(mixed), outcome_fingerprint(reference));
    // Only wiper's faults went through the engine.
    ASSERT_EQ(mixed.families.size(), 2u);
    EXPECT_EQ(mixed.lockstep_lanes, mixed.families[1].faults.size());
}

TEST(Lockstep, NullFaultyFactoryStaysFrameworkErrorInBothEngines) {
    // make_faulty == nullptr is a per-fault framework error; lockstep
    // eligibility requires the factory, so the engine must not quietly
    // grade what the per-fault path reports as broken.
    std::vector<std::string> fingerprints;
    for (const bool lockstep : {false, true}) {
        GradingOptions opts;
        opts.jobs = 1;
        opts.lockstep = lockstep;
        GradingCampaign grading(opts);
        auto setup = kb_grading_setup("central_lock");
        setup.make_faulty = nullptr;
        grading.add(std::move(setup));
        const auto result = grading.run_all();
        ASSERT_EQ(result.families.size(), 1u);
        EXPECT_EQ(result.framework_errors(), result.fault_count());
        for (const auto& fg : result.families.front().faults) {
            EXPECT_EQ(fg.outcome, FaultOutcome::FrameworkError)
                << fg.fault.id();
            EXPECT_NE(fg.error_message.find("no faulty backend factory"),
                      std::string::npos)
                << fg.error_message;
        }
        EXPECT_EQ(result.lockstep_lanes, 0u);
        fingerprints.push_back(outcome_fingerprint(result));
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

} // namespace
} // namespace ctk::core
