// Unit tests: the virtual test stand backend.
#include <gtest/gtest.h>

#include "dut/interior_light.hpp"
#include "dut/turn_signal.hpp"
#include "sim/virtual_stand.hpp"
#include "stand/paper.hpp"

namespace ctk::sim {
namespace {

std::shared_ptr<dut::InteriorLightEcu> make_light() {
    return std::make_shared<dut::InteriorLightEcu>();
}

VirtualStand make_stand(std::shared_ptr<dut::Dut> d,
                        VirtualStandOptions opts = {}) {
    return VirtualStand(stand::paper::figure1_stand(), std::move(d), opts);
}

TEST(VirtualStandTest, AppliesResistanceAndMeasuresVoltage) {
    auto light = make_light();
    VirtualStand vs = make_stand(light);
    vs.apply_bits("Can1", "night", {true});
    vs.apply_real("Ress3", "put_r", {"ds_fl"}, 0.0);
    vs.advance(0.2);
    const double v = vs.measure_real("Ress1", "get_u",
                                     {"int_ill_f", "int_ill_r"});
    EXPECT_DOUBLE_EQ(v, 12.0);
}

TEST(VirtualStandTest, SupplyComesFromStandVariables) {
    stand::StandDescription desc = stand::paper::figure1_stand();
    desc.set_variable("ubatt", 13.5);
    auto light = make_light();
    VirtualStand vs(desc, light);
    vs.apply_bits("Can1", "night", {true});
    vs.apply_real("Ress3", "put_r", {"ds_fl"}, 0.0);
    vs.advance(0.2);
    EXPECT_DOUBLE_EQ(
        vs.measure_real("Ress1", "get_u", {"int_ill_f", "int_ill_r"}), 13.5);
}

TEST(VirtualStandTest, InfResistanceMeansOpenDoor) {
    auto light = make_light();
    VirtualStand vs = make_stand(light);
    vs.apply_bits("Can1", "night", {true});
    vs.apply_real("Ress3", "put_r", {"ds_fl"},
                  std::numeric_limits<double>::infinity());
    vs.advance(0.2);
    EXPECT_DOUBLE_EQ(
        vs.measure_real("Ress1", "get_u", {"int_ill_f", "int_ill_r"}), 0.0);
}

TEST(VirtualStandTest, DvmGainAndNoiseAreApplied) {
    VirtualStandOptions opts;
    opts.dvm_gain = 1.01;
    auto light = make_light();
    VirtualStand vs = make_stand(light, opts);
    vs.apply_bits("Can1", "night", {true});
    vs.apply_real("Ress3", "put_r", {"ds_fl"}, 0.0);
    vs.advance(0.2);
    EXPECT_NEAR(vs.measure_real("Ress1", "get_u", {"int_ill_f", "int_ill_r"}),
                12.12, 1e-9);

    VirtualStandOptions noisy;
    noisy.dvm_noise = 0.05;
    auto light2 = make_light();
    VirtualStand vs2 = make_stand(light2, noisy);
    vs2.apply_bits("Can1", "night", {true});
    vs2.apply_real("Ress3", "put_r", {"ds_fl"}, 0.0);
    vs2.advance(0.2);
    double lo = 1e9, hi = -1e9;
    for (int i = 0; i < 50; ++i) {
        const double v =
            vs2.measure_real("Ress1", "get_u", {"int_ill_f", "int_ill_r"});
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GE(lo, 12.0 - 0.05);
    EXPECT_LE(hi, 12.0 + 0.05);
    EXPECT_GT(hi - lo, 1e-4); // noise actually varies
}

TEST(VirtualStandTest, ResetRestoresPowerOnState) {
    auto light = make_light();
    VirtualStand vs = make_stand(light);
    vs.apply_bits("Can1", "night", {true});
    vs.apply_real("Ress3", "put_r", {"ds_fl"}, 0.0);
    vs.advance(0.5);
    EXPECT_GT(vs.now(), 0.0);
    vs.reset();
    EXPECT_DOUBLE_EQ(vs.now(), 0.0);
    vs.advance(0.1);
    EXPECT_DOUBLE_EQ(
        vs.measure_real("Ress1", "get_u", {"int_ill_f", "int_ill_r"}), 0.0);
}

TEST(VirtualStandTest, UnsupportedMethodsThrow) {
    auto light = make_light();
    VirtualStand vs = make_stand(light);
    EXPECT_THROW(vs.apply_real("Ress2", "put_q", {"x"}, 1.0), StandError);
    EXPECT_THROW((void)vs.measure_real("Ress1", "get_q", {"x"}), StandError);
    EXPECT_THROW((void)vs.measure_real("Ress1", "get_f", {"unarmed"}),
                 StandError);
}

TEST(VirtualStandTest, FrequencyCounterMeasuresFlashRate) {
    auto ts = std::make_shared<dut::TurnSignalEcu>();
    stand::StandDescription desc("fc");
    stand::Resource fc;
    fc.id = "FC1";
    fc.methods.push_back(stand::MethodSupport{
        "get_f", {stand::ParamRange{"f", 0, 1e6, "Hz"}}});
    desc.add_resource(fc);
    desc.connect("FC1", "lamp_l", "K1");
    desc.set_variable("ubatt", 12.0);
    VirtualStand vs(desc, ts);

    // Arm the counter as the engine's prepare() would.
    stand::Allocation plan;
    stand::AllocationEntry e;
    e.requirement.signal = "lamp_l";
    e.requirement.method = "get_f";
    e.requirement.pins = {"lamp_l"};
    e.resource = "FC1";
    plan.entries.push_back(e);
    vs.prepare(plan);

    ts->can_receive("turn_sw", {false, true}); // left
    for (int i = 0; i < 80; ++i) vs.advance(0.05); // 4 s
    const double f = vs.measure_real("FC1", "get_f", {"lamp_l"});
    EXPECT_GE(f, 1.0);
    EXPECT_LE(f, 2.0); // nominal 1.5 Hz, gate 2 s

    ts->can_receive("turn_sw", {false, false}); // off
    for (int i = 0; i < 80; ++i) vs.advance(0.05);
    EXPECT_DOUBLE_EQ(vs.measure_real("FC1", "get_f", {"lamp_l"}), 0.0);
}

TEST(VirtualStandTest, CanLoopbackThroughDut) {
    auto light = make_light();
    VirtualStand vs = make_stand(light);
    // The interior light ECU transmits nothing.
    EXPECT_TRUE(vs.measure_bits("Can1", "ign_st").empty());
}

} // namespace
} // namespace ctk::sim
