// Unit tests: the virtual test stand backend.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dut/interior_light.hpp"
#include "dut/turn_signal.hpp"
#include "dut/wiper.hpp"
#include "sim/fault_inject.hpp"
#include "sim/virtual_stand.hpp"
#include "stand/paper.hpp"

namespace ctk::sim {
namespace {

std::shared_ptr<dut::InteriorLightEcu> make_light() {
    return std::make_shared<dut::InteriorLightEcu>();
}

VirtualStand make_stand(std::shared_ptr<dut::Dut> d,
                        VirtualStandOptions opts = {}) {
    return VirtualStand(stand::paper::figure1_stand(), std::move(d), opts);
}

TEST(VirtualStandTest, AppliesResistanceAndMeasuresVoltage) {
    auto light = make_light();
    VirtualStand vs = make_stand(light);
    vs.apply_bits("Can1", "night", {true});
    vs.apply_real("Ress3", "put_r", {"ds_fl"}, 0.0);
    vs.advance(0.2);
    const double v = vs.measure_real("Ress1", "get_u",
                                     {"int_ill_f", "int_ill_r"});
    EXPECT_DOUBLE_EQ(v, 12.0);
}

TEST(VirtualStandTest, SupplyComesFromStandVariables) {
    stand::StandDescription desc = stand::paper::figure1_stand();
    desc.set_variable("ubatt", 13.5);
    auto light = make_light();
    VirtualStand vs(desc, light);
    vs.apply_bits("Can1", "night", {true});
    vs.apply_real("Ress3", "put_r", {"ds_fl"}, 0.0);
    vs.advance(0.2);
    EXPECT_DOUBLE_EQ(
        vs.measure_real("Ress1", "get_u", {"int_ill_f", "int_ill_r"}), 13.5);
}

TEST(VirtualStandTest, InfResistanceMeansOpenDoor) {
    auto light = make_light();
    VirtualStand vs = make_stand(light);
    vs.apply_bits("Can1", "night", {true});
    vs.apply_real("Ress3", "put_r", {"ds_fl"},
                  std::numeric_limits<double>::infinity());
    vs.advance(0.2);
    EXPECT_DOUBLE_EQ(
        vs.measure_real("Ress1", "get_u", {"int_ill_f", "int_ill_r"}), 0.0);
}

TEST(VirtualStandTest, DvmGainAndNoiseAreApplied) {
    VirtualStandOptions opts;
    opts.dvm_gain = 1.01;
    auto light = make_light();
    VirtualStand vs = make_stand(light, opts);
    vs.apply_bits("Can1", "night", {true});
    vs.apply_real("Ress3", "put_r", {"ds_fl"}, 0.0);
    vs.advance(0.2);
    EXPECT_NEAR(vs.measure_real("Ress1", "get_u", {"int_ill_f", "int_ill_r"}),
                12.12, 1e-9);

    VirtualStandOptions noisy;
    noisy.dvm_noise = 0.05;
    auto light2 = make_light();
    VirtualStand vs2 = make_stand(light2, noisy);
    vs2.apply_bits("Can1", "night", {true});
    vs2.apply_real("Ress3", "put_r", {"ds_fl"}, 0.0);
    vs2.advance(0.2);
    double lo = 1e9, hi = -1e9;
    for (int i = 0; i < 50; ++i) {
        const double v =
            vs2.measure_real("Ress1", "get_u", {"int_ill_f", "int_ill_r"});
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GE(lo, 12.0 - 0.05);
    EXPECT_LE(hi, 12.0 + 0.05);
    EXPECT_GT(hi - lo, 1e-4); // noise actually varies
}

TEST(VirtualStandTest, ResetRestoresPowerOnState) {
    auto light = make_light();
    VirtualStand vs = make_stand(light);
    vs.apply_bits("Can1", "night", {true});
    vs.apply_real("Ress3", "put_r", {"ds_fl"}, 0.0);
    vs.advance(0.5);
    EXPECT_GT(vs.now(), 0.0);
    vs.reset();
    EXPECT_DOUBLE_EQ(vs.now(), 0.0);
    vs.advance(0.1);
    EXPECT_DOUBLE_EQ(
        vs.measure_real("Ress1", "get_u", {"int_ill_f", "int_ill_r"}), 0.0);
}

TEST(VirtualStandTest, UnsupportedMethodsThrow) {
    auto light = make_light();
    VirtualStand vs = make_stand(light);
    EXPECT_THROW(vs.apply_real("Ress2", "put_q", {"x"}, 1.0), StandError);
    EXPECT_THROW((void)vs.measure_real("Ress1", "get_q", {"x"}), StandError);
    EXPECT_THROW((void)vs.measure_real("Ress1", "get_f", {"unarmed"}),
                 StandError);
}

TEST(VirtualStandTest, FrequencyCounterMeasuresFlashRate) {
    auto ts = std::make_shared<dut::TurnSignalEcu>();
    stand::StandDescription desc("fc");
    stand::Resource fc;
    fc.id = "FC1";
    fc.methods.push_back(stand::MethodSupport{
        "get_f", {stand::ParamRange{"f", 0, 1e6, "Hz"}}});
    desc.add_resource(fc);
    desc.connect("FC1", "lamp_l", "K1");
    desc.set_variable("ubatt", 12.0);
    VirtualStand vs(desc, ts);

    // Arm the counter as the engine's prepare() would.
    stand::Allocation plan;
    stand::AllocationEntry e;
    e.requirement.signal = "lamp_l";
    e.requirement.method = "get_f";
    e.requirement.pins = {"lamp_l"};
    e.resource = "FC1";
    plan.entries.push_back(e);
    vs.prepare(plan);

    ts->can_receive("turn_sw", {false, true}); // left
    for (int i = 0; i < 80; ++i) vs.advance(0.05); // 4 s
    const double f = vs.measure_real("FC1", "get_f", {"lamp_l"});
    EXPECT_GE(f, 1.0);
    EXPECT_LE(f, 2.0); // nominal 1.5 Hz, gate 2 s

    ts->can_receive("turn_sw", {false, false}); // off
    for (int i = 0; i < 80; ++i) vs.advance(0.05);
    EXPECT_DOUBLE_EQ(vs.measure_real("FC1", "get_f", {"lamp_l"}), 0.0);
}

TEST(VirtualStandTest, CanLoopbackThroughDut) {
    auto light = make_light();
    VirtualStand vs = make_stand(light);
    // The interior light ECU transmits nothing.
    EXPECT_TRUE(vs.measure_bits("Can1", "ign_st").empty());
}

// --------------------------------------------------------- FaultyDut

TEST(FaultyDutTest, FaultIdsAreStable) {
    EXPECT_EQ(FaultSpec({FaultKind::PinStuckLow, "wiper_lo", 0.0}).id(),
              "stuck_low@wiper_lo");
    EXPECT_EQ(FaultSpec({FaultKind::PinOffset, "lamp_l", 0.8}).id(),
              "offset@lamp_l+0.8");
    EXPECT_EQ(FaultSpec({FaultKind::PinScale, "lamp_l", 0.8}).id(),
              "scale@lamp_l*0.8");
    EXPECT_EQ(FaultSpec({FaultKind::CanDrop, "turn_sw", 0.0}).id(),
              "can_drop@turn_sw");
    EXPECT_EQ(FaultSpec({FaultKind::TimingSkew, "clock", 1.35}).id(),
              "skew@clock*1.35");
}

TEST(FaultyDutTest, StuckFaultAppliesInBothPinTiers) {
    FaultyDut faulty(std::make_unique<dut::WiperEcu>(),
                     {FaultKind::PinStuckHigh, "wiper_lo", 0.0});
    // Lever off: a healthy wiper drives nothing, the fault pins the low
    // winding at supply — through the string read AND the handle read.
    faulty.step(0.1);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_lo"), 12.0);
    const int idx = faulty.pin_index("wiper_lo");
    ASSERT_GE(idx, 0);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage_at(idx), 12.0);
    // The sibling pin is untouched in both tiers.
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_hi"), 0.0);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage_at(faulty.pin_index("wiper_hi")),
                     0.0);
}

TEST(FaultyDutTest, DriftFaultsShiftOnlyTheTargetPin) {
    FaultyDut offset(std::make_unique<dut::WiperEcu>(),
                     {FaultKind::PinOffset, "wiper_lo", 0.8});
    offset.can_receive("wiper_sw", {true, false}); // slow: lo = supply
    offset.step(0.1);
    EXPECT_DOUBLE_EQ(offset.pin_voltage("wiper_lo"), 12.8);
    EXPECT_DOUBLE_EQ(offset.pin_voltage("wiper_hi"), 0.0);

    FaultyDut scale(std::make_unique<dut::WiperEcu>(),
                    {FaultKind::PinScale, "wiper_lo", 0.8});
    scale.can_receive("wiper_sw", {true, false});
    scale.step(0.1);
    EXPECT_DOUBLE_EQ(scale.pin_voltage("wiper_lo"), 12.0 * 0.8);
    EXPECT_DOUBLE_EQ(scale.pin_voltage_at(scale.pin_index("wiper_lo")),
                     12.0 * 0.8);
}

TEST(FaultyDutTest, CanDropBlocksOnlyTheTargetSignal) {
    FaultyDut faulty(std::make_unique<dut::WiperEcu>(),
                     {FaultKind::CanDrop, "wiper_sw", 0.0});
    faulty.can_receive("wiper_sw", {true, false}); // slow — dropped
    faulty.step(0.1);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_lo"), 0.0);
}

TEST(FaultyDutTest, CanCorruptInvertsThePayload) {
    FaultyDut faulty(std::make_unique<dut::WiperEcu>(),
                     {FaultKind::CanCorrupt, "wiper_sw", 0.0});
    // "off" (00) arrives as "fast" (11): high winding on.
    faulty.can_receive("wiper_sw", {false, false});
    faulty.step(0.1);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_hi"), 12.0);
    // "fast" (11) arrives as "off" (00): everything off.
    faulty.can_receive("wiper_sw", {true, true});
    faulty.step(0.1);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_hi"), 0.0);
}

TEST(FaultyDutTest, TimingSkewScalesTheInternalClock) {
    dut::WiperEcu plain;
    FaultyDut slowed(std::make_unique<dut::WiperEcu>(),
                     {FaultKind::TimingSkew, "clock", 0.5});
    // Interval mode, pot open (max interval). After 1.5 s real time the
    // healthy ECU finished its 1 s wipe; the half-speed one is at 0.75 s
    // internal time, still wiping.
    plain.can_receive("wiper_sw", {false, true});
    slowed.can_receive("wiper_sw", {false, true});
    plain.step(1.5);
    slowed.step(1.5);
    EXPECT_DOUBLE_EQ(plain.pin_voltage("wiper_lo"), 0.0);
    EXPECT_DOUBLE_EQ(slowed.pin_voltage("wiper_lo"), 12.0);
}

TEST(FaultyDutTest, ResetAndSupplyForwardToTheInnerDevice) {
    FaultyDut faulty(std::make_unique<dut::WiperEcu>(),
                     {FaultKind::PinStuckHigh, "wiper_lo", 0.0});
    faulty.set_supply(9.0);
    EXPECT_DOUBLE_EQ(faulty.supply(), 9.0);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_lo"), 9.0); // stuck level
    faulty.can_receive("wiper_sw", {true, true});
    faulty.step(0.1);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_hi"), 9.0);
    faulty.reset();
    faulty.step(0.1);
    // Reset cleared the frame: fast mode is gone, the fault persists.
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_hi"), 0.0);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_lo"), 9.0);
}

TEST(FaultyDutTest, IntermittentFaultTogglesWithThePeriod) {
    EXPECT_EQ(FaultSpec({FaultKind::PinIntermittentLow, "wiper_lo", 4}).id(),
              "int_low@wiper_lo%4");
    FaultyDut faulty(std::make_unique<dut::WiperEcu>(),
                     {FaultKind::PinIntermittentLow, "wiper_lo", 1});
    faulty.can_receive("wiper_sw", {true, false}); // slow: lo = supply
    // Phase 0 (0 elapsed ticks) is the faulty half-period.
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_lo"), 0.0);
    faulty.step(0.1); // tick 1: healthy half-period
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_lo"), 12.0);
    faulty.step(0.1); // tick 2: faulty again
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_lo"), 0.0);
    // reset() restarts the phase: a replayed test sees the same DUT.
    faulty.reset();
    faulty.can_receive("wiper_sw", {true, false});
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_lo"), 0.0);
    faulty.step(0.1);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_lo"), 12.0);
}

TEST(FaultyDutTest, PairFaultSeedsBothSingles) {
    FaultSpec pair{FaultKind::PinStuckHigh, "wiper_lo", 0.0};
    pair.paired = std::make_shared<FaultSpec>(
        FaultSpec{FaultKind::CanDrop, "wiper_sw", 0.0});
    EXPECT_EQ(pair.id(), "stuck_high@wiper_lo&can_drop@wiper_sw");
    EXPECT_EQ(fault_kind_label(pair), std::string("pair"));

    FaultyDut faulty(std::make_unique<dut::WiperEcu>(), pair);
    faulty.can_receive("wiper_sw", {true, true}); // fast — dropped
    faulty.step(0.1);
    // Both halves are live: the dropped command leaves the high winding
    // off, while the stuck fault pins the low winding at supply.
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_hi"), 0.0);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_lo"), 12.0);
}

TEST(FaultyDutTest, ObservationOnlyClassifiesKinds) {
    auto single = [](FaultKind kind, const char* target,
                     double magnitude = 0.0) {
        return FaultSpec{kind, target, magnitude};
    };
    EXPECT_TRUE(observation_only_fault(
        single(FaultKind::PinStuckLow, "wiper_lo")));
    EXPECT_TRUE(observation_only_fault(
        single(FaultKind::PinStuckHigh, "wiper_lo")));
    EXPECT_TRUE(observation_only_fault(
        single(FaultKind::PinOffset, "wiper_lo", 0.8)));
    EXPECT_TRUE(observation_only_fault(
        single(FaultKind::PinScale, "wiper_lo", 0.8)));
    EXPECT_TRUE(observation_only_fault(
        single(FaultKind::PinIntermittentLow, "wiper_lo", 4)));
    EXPECT_TRUE(observation_only_fault(
        single(FaultKind::PinIntermittentHigh, "wiper_lo", 4)));
    EXPECT_FALSE(observation_only_fault(
        single(FaultKind::CanDrop, "wiper_sw")));
    EXPECT_FALSE(observation_only_fault(
        single(FaultKind::CanCorrupt, "wiper_sw")));
    EXPECT_FALSE(observation_only_fault(
        single(FaultKind::TimingSkew, "clock", 1.35)));

    // A pair is observation-only iff EVERY layer is.
    FaultSpec pin_pair = single(FaultKind::PinStuckLow, "wiper_lo");
    pin_pair.paired = std::make_shared<FaultSpec>(
        single(FaultKind::PinOffset, "wiper_hi", 0.8));
    EXPECT_TRUE(observation_only_fault(pin_pair));
    FaultSpec mixed = single(FaultKind::PinStuckLow, "wiper_lo");
    mixed.paired = std::make_shared<FaultSpec>(
        single(FaultKind::CanDrop, "wiper_sw"));
    EXPECT_FALSE(observation_only_fault(mixed));
}

TEST(FaultyDutTest, FaultChainIsInnermostFirst) {
    FaultSpec lone{FaultKind::PinScale, "wiper_lo", 0.8};
    const auto one = fault_chain(lone);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], &lone);

    // For "a&b" the FaultyDut constructor seeds b (the paired half)
    // around the device first, so the chain reads innermost-first.
    FaultSpec outer{FaultKind::PinStuckHigh, "wiper_lo", 0.0};
    outer.paired = std::make_shared<FaultSpec>(
        FaultSpec{FaultKind::PinOffset, "wiper_lo", 0.5});
    const auto chain = fault_chain(outer);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0], outer.paired.get());
    EXPECT_EQ(chain[1], &outer);
}

TEST(FaultyDutTest, MutateObservedMatchesTheDecorator) {
    // For every pin kind: reading the faulted pin through a FaultyDut
    // equals mutate_observed() applied to the healthy device's reading —
    // the identity the lockstep grader (core/lockstep) evaluates
    // observation-only faults with, ticks being the step count since
    // reset.
    const double supply = 12.0;
    const std::vector<FaultSpec> specs{
        {FaultKind::PinStuckLow, "wiper_lo", 0.0},
        {FaultKind::PinStuckHigh, "wiper_lo", 0.0},
        {FaultKind::PinOffset, "wiper_lo", -0.4},
        {FaultKind::PinScale, "wiper_lo", 0.65},
        {FaultKind::PinIntermittentLow, "wiper_lo", 2},
        {FaultKind::PinIntermittentHigh, "wiper_lo", 3},
    };
    for (const auto& spec : specs) {
        dut::WiperEcu healthy;
        FaultyDut faulty(std::make_unique<dut::WiperEcu>(), spec);
        healthy.set_supply(supply);
        faulty.set_supply(supply);
        healthy.can_receive("wiper_sw", {true, false}); // slow: lo live
        faulty.can_receive("wiper_sw", {true, false});
        for (long long tick = 0; tick < 8; ++tick) {
            EXPECT_DOUBLE_EQ(
                faulty.pin_voltage("wiper_lo"),
                mutate_observed(spec, healthy.pin_voltage("wiper_lo"),
                                supply, tick))
                << spec.id() << " tick " << tick;
            // The untargeted pin passes through unmutated.
            EXPECT_DOUBLE_EQ(faulty.pin_voltage("wiper_hi"),
                             healthy.pin_voltage("wiper_hi"))
                << spec.id() << " tick " << tick;
            healthy.step(0.1);
            faulty.step(0.1);
        }
    }
    // Non-pin kinds are identity rewrites: they perturb the trajectory,
    // not the observation.
    const FaultSpec skew{FaultKind::TimingSkew, "clock", 1.35};
    EXPECT_DOUBLE_EQ(mutate_observed(skew, 7.5, supply, 3), 7.5);
    const FaultSpec drop{FaultKind::CanDrop, "wiper_sw", 0.0};
    EXPECT_DOUBLE_EQ(mutate_observed(drop, 7.5, supply, 3), 7.5);
}

TEST(FaultyDutTest, ScaledUniverseGrowsTheSurface) {
    FaultSurface surface;
    surface.output_pins = {"lamp_l"};
    surface.can_signals = {"turn_sw"};
    // Defaults reproduce the base universe exactly.
    const auto base = make_fault_universe(surface);
    const auto base2 =
        make_fault_universe(surface, UniverseOptions::base());
    ASSERT_EQ(base.size(), base2.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        EXPECT_EQ(base[i].id(), base2[i].id()) << i;

    const auto scaled =
        make_fault_universe(surface, UniverseOptions::scaled());
    // Per pin: 2 stucks + 8 offsets + 6 scales + 2 x 6 intermittents;
    // per signal: drop + corrupt; 8 skews; 2 x 2 cross-target pairs of
    // the digital singles.
    EXPECT_EQ(scaled.size(), 28u + 2u + 8u + 4u);
    const auto scaled2 =
        make_fault_universe(surface, UniverseOptions::scaled());
    ASSERT_EQ(scaled.size(), scaled2.size());
    std::set<std::string> ids;
    for (std::size_t i = 0; i < scaled.size(); ++i) {
        EXPECT_EQ(scaled[i].id(), scaled2[i].id()) << i;
        ids.insert(scaled[i].id());
    }
    EXPECT_EQ(ids.size(), scaled.size()); // no duplicate ids
    EXPECT_TRUE(ids.count("int_low@lamp_l%8"));
    EXPECT_TRUE(ids.count("offset@lamp_l-1.6"));
    EXPECT_TRUE(ids.count("stuck_low@lamp_l&can_corrupt@turn_sw"));
}

TEST(FaultyDutTest, UniverseExpandsTheSurfaceDeterministically) {
    FaultSurface surface;
    surface.output_pins = {"Lamp_L"};
    surface.can_signals = {"TURN_SW"};
    const auto universe = make_fault_universe(surface);
    std::vector<std::string> ids;
    for (const auto& f : universe) ids.push_back(f.id());
    EXPECT_EQ(ids, (std::vector<std::string>{
                       "stuck_low@lamp_l", "stuck_high@lamp_l",
                       "offset@lamp_l+0.8", "scale@lamp_l*0.8",
                       "can_drop@turn_sw", "can_corrupt@turn_sw",
                       "skew@clock*1.35", "skew@clock*0.7"}));
}

} // namespace
} // namespace ctk::sim
