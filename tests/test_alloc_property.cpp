// Property tests for the allocator over randomly generated stands and
// requirement sets (parameterized across seeds).
//
// Invariants checked on every instance:
//  P1  any plan returned (either policy) is *valid*: every entry's
//      resource supports the method, is routable to all pins, can realise
//      every demand, and no non-shareable resource serves two signals;
//  P2  if greedy succeeds, matching succeeds (matching is complete);
//  P3  matching never succeeds on an instance where no perfect matching
//      exists (cross-checked against brute-force enumeration);
//  P4  passive (unconnected) entries appear only for put_r requirements
//      whose demands all accept INF.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>

#include "common/rng.hpp"
#include "stand/allocator.hpp"

namespace ctk::stand {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Instance {
    StandDescription desc{"random"};
    std::vector<Requirement> requirements;
};

/// Random instance: n resources, m requirements, connection density p,
/// random ranges; some demands INF-friendly.
Instance make_instance(Rng& rng) {
    Instance inst;
    const int n_res = 2 + static_cast<int>(rng.next_below(5));  // 2..6
    const int n_req = 1 + static_cast<int>(rng.next_below(6));  // 1..6

    for (int r = 0; r < n_res; ++r) {
        Resource res;
        res.id = "R" + std::to_string(r);
        res.label = "decade";
        const double max_ohm = 100.0 * static_cast<double>(
                                   1 + rng.next_below(10000));
        res.methods.push_back(MethodSupport{
            "put_r", {ParamRange{"r", 0.0, max_ohm, "Ohm"}}});
        res.supports_disconnect = rng.next_bool(0.5);
        inst.desc.add_resource(res);
    }

    for (int q = 0; q < n_req; ++q) {
        Requirement req;
        req.signal = "s" + std::to_string(q);
        req.method = "put_r";
        req.pins = {"p" + std::to_string(q)};
        const int demands = 1 + static_cast<int>(rng.next_below(3));
        for (int d = 0; d < demands; ++d) {
            ValueDemand vd;
            vd.status = "st" + std::to_string(d);
            if (rng.next_bool(0.3)) {
                vd.nominal = kInf; // Closed-style
                vd.tol_min = 5000.0;
                vd.tol_max = kInf;
            } else {
                const double lo =
                    static_cast<double>(rng.next_below(100000));
                vd.nominal = lo;
                vd.tol_min = lo;
                vd.tol_max = lo + 1000.0;
            }
            req.demands.push_back(vd);
        }
        inst.requirements.push_back(req);
    }

    // Random connectivity with density ~0.5.
    for (int r = 0; r < n_res; ++r)
        for (int q = 0; q < n_req; ++q)
            if (rng.next_bool(0.5))
                inst.desc.connect("R" + std::to_string(r),
                                  "p" + std::to_string(q),
                                  "K" + std::to_string(r) + "_" +
                                      std::to_string(q));
    return inst;
}

bool plan_is_valid(const Instance& inst, const Allocation& plan) {
    std::map<std::string, int> uses;
    if (plan.entries.size() != inst.requirements.size()) return false;
    for (const auto& e : plan.entries) {
        if (e.is_unconnected()) {
            // P4: only INF-friendly put_r requirements may be passive.
            if (e.requirement.is_get || e.requirement.method != "put_r")
                return false;
            for (const auto& d : e.requirement.demands)
                if (d.tol_max.value_or(kInf) != kInf) return false;
            continue;
        }
        const Resource* res = inst.desc.find_resource(e.resource);
        if (!res) return false;
        if (!feasible(inst.desc, *res, e.requirement)) return false;
        if (!res->shareable && ++uses[res->id] > 1) return false;
    }
    return true;
}

/// Brute-force feasibility: does ANY assignment (resources distinct per
/// non-passive requirement) satisfy all requirements?
bool feasible_by_enumeration(const Instance& inst) {
    const auto& reqs = inst.requirements;
    const auto& resources = inst.desc.resources();
    std::vector<int> chosen(reqs.size(), -1);

    // Passive requirements never consume resources.
    auto passive = [&](const Requirement& r) {
        return std::all_of(r.demands.begin(), r.demands.end(),
                           [&](const ValueDemand& d) {
                               return d.tol_max.value_or(kInf) == kInf;
                           });
    };

    std::function<bool(std::size_t, unsigned)> rec =
        [&](std::size_t i, unsigned used_mask) {
            if (i == reqs.size()) return true;
            if (passive(reqs[i])) return rec(i + 1, used_mask);
            for (std::size_t j = 0; j < resources.size(); ++j) {
                if (used_mask & (1u << j)) continue;
                if (!feasible(inst.desc, resources[j], reqs[i])) continue;
                if (rec(i + 1, used_mask | (1u << j))) return true;
            }
            return false;
        };
    return rec(0, 0);
}

class AllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorProperty, InvariantsHoldOnRandomInstances) {
    Rng rng(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        const Instance inst = make_instance(rng);

        bool greedy_ok = false, matching_ok = false;
        Allocation greedy_plan, matching_plan;
        try {
            greedy_plan = allocate(inst.desc, inst.requirements,
                                   AllocPolicy::Greedy);
            greedy_ok = true;
        } catch (const StandError&) {
        }
        try {
            matching_plan = allocate(inst.desc, inst.requirements,
                                     AllocPolicy::Matching);
            matching_ok = true;
        } catch (const StandError&) {
        }

        // P1: returned plans are valid.
        if (greedy_ok) {
            EXPECT_TRUE(plan_is_valid(inst, greedy_plan)) << "trial " << trial;
        }
        if (matching_ok) {
            EXPECT_TRUE(plan_is_valid(inst, matching_plan))
                << "trial " << trial;
        }

        // P2: matching dominates greedy.
        if (greedy_ok) {
            EXPECT_TRUE(matching_ok) << "trial " << trial;
        }

        // P3: matching agrees with brute force.
        EXPECT_EQ(matching_ok, feasible_by_enumeration(inst))
            << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

} // namespace
} // namespace ctk::stand
