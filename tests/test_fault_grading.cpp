// Fault-injection grading tests: deterministic universes, golden-run
// equivalence with an undecorated engine run, planted-fault detection,
// worker-count independence, and framework-error isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/augment.hpp"
#include "core/grading.hpp"
#include "core/kb.hpp"
#include "core/plan.hpp"
#include "dut/catalogue.hpp"
#include "report/report.hpp"
#include "sim/fault_inject.hpp"
#include "sim/virtual_stand.hpp"

namespace ctk::core {
namespace {

const model::MethodRegistry kReg = model::MethodRegistry::builtin();

GradingResult grade(unsigned jobs, bool share_plan = true,
                    const std::vector<std::string>& families = {}) {
    GradingOptions opts;
    opts.jobs = jobs;
    opts.share_plan = share_plan;
    return grade_kb(opts, families);
}

TEST(FaultGrading, UniverseIsDeterministicAndCoversEveryKind) {
    for (const auto& family : kb::families()) {
        const auto first = kb_fault_universe(family);
        const auto second = kb_fault_universe(family);
        ASSERT_FALSE(first.empty()) << family;
        ASSERT_EQ(first.size(), second.size()) << family;
        for (std::size_t i = 0; i < first.size(); ++i)
            EXPECT_EQ(first[i].id(), second[i].id()) << family;

        // Every family measures pins, sends bus frames, and gets the
        // two clock skews, so all seven kinds must be represented.
        for (const auto kind :
             {sim::FaultKind::PinStuckLow, sim::FaultKind::PinStuckHigh,
              sim::FaultKind::PinOffset, sim::FaultKind::PinScale,
              sim::FaultKind::CanDrop, sim::FaultKind::CanCorrupt,
              sim::FaultKind::TimingSkew}) {
            EXPECT_TRUE(std::any_of(
                first.begin(), first.end(),
                [&](const sim::FaultSpec& f) { return f.kind == kind; }))
                << family << " lacks " << sim::fault_kind_name(kind);
        }

        // Ids are unique — they key the per-fault rows everywhere.
        for (std::size_t i = 0; i < first.size(); ++i)
            for (std::size_t j = i + 1; j < first.size(); ++j)
                EXPECT_NE(first[i].id(), first[j].id()) << family;
    }
}

TEST(FaultGrading, ScaledUniverseGradesDeterministically) {
    // The --universe scaled surface: the default stays byte-identical
    // to the base universe, the scaled one multiplies it and still
    // grades the same at any worker count.
    const auto base = kb_fault_universe("wiper");
    const auto base_explicit =
        kb_fault_universe("wiper", {}, sim::UniverseOptions::base());
    ASSERT_EQ(base.size(), base_explicit.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        EXPECT_EQ(base[i].id(), base_explicit[i].id());

    const auto scaled =
        kb_fault_universe("wiper", {}, sim::UniverseOptions::scaled());
    EXPECT_EQ(scaled.size(), 78u);
    EXPECT_GT(scaled.size(), 6 * base.size());

    GradingOptions opts;
    opts.jobs = 1;
    opts.universe = sim::UniverseOptions::scaled();
    const auto one = grade_kb(opts, {"wiper"});
    opts.jobs = 8;
    const auto eight = grade_kb(opts, {"wiper"});
    EXPECT_EQ(one.fault_count(), scaled.size());
    EXPECT_EQ(outcome_fingerprint(one), outcome_fingerprint(eight));
    // Intermittents and double faults are graded, not just generated:
    // every scaled-only kind shows up with a real outcome.
    bool saw_intermittent = false, saw_pair = false;
    for (const auto& f : one.families.front().faults) {
        if (f.fault.kind == sim::FaultKind::PinIntermittentLow ||
            f.fault.kind == sim::FaultKind::PinIntermittentHigh)
            saw_intermittent = true;
        if (f.fault.paired) saw_pair = true;
        EXPECT_NE(f.outcome, FaultOutcome::FrameworkError) << f.fault.id();
    }
    EXPECT_TRUE(saw_intermittent);
    EXPECT_TRUE(saw_pair);
}

TEST(FaultGrading, SurfaceComesFromThePlanNotTheDut) {
    const auto script = script::compile(kb::suite_for("wiper"), kReg);
    const auto plan =
        CompiledPlan::compile(script, kb::stand_for("wiper"), RunOptions{});
    const auto surface = plan_fault_surface(plan);
    EXPECT_EQ(surface.output_pins,
              (std::vector<std::string>{"wiper_lo", "wiper_hi"}));
    EXPECT_EQ(surface.can_signals,
              (std::vector<std::string>{"wiper_sw"}));
}

TEST(FaultGrading, GoldenRunMatchesUndecoratedEngineRun) {
    const auto result = grade(1);
    ASSERT_EQ(result.families.size(), kb::families().size());
    for (const auto& family : result.families) {
        ASSERT_FALSE(family.golden_error) << family.golden_message;
        EXPECT_TRUE(family.golden_passed) << family.family;

        // The grading golden fingerprint must equal a plain engine run
        // of the same suite on an undecorated golden device.
        const auto script =
            script::compile(kb::suite_for(family.family), kReg);
        auto desc = kb::stand_for(family.family);
        TestEngine engine(desc,
                          std::make_shared<sim::VirtualStand>(
                              desc, dut::make_golden(family.family)));
        EXPECT_EQ(family.golden_fingerprint,
                  detection_fingerprint(engine.run(script)))
            << family.family;
    }
}

TEST(FaultGrading, NoOpFaultIsByteTransparent) {
    // Offset 0 / scale 1 / skew 1 mutate nothing: the decorated run must
    // be byte-identical (full CSV, including measured values) to the
    // undecorated one — the soundness condition golden-vs-faulty
    // comparison rests on.
    const auto script = script::compile(kb::suite_for("wiper"), kReg);
    const auto desc = kb::stand_for("wiper");
    const auto plan = CompiledPlan::compile(script, desc, RunOptions{});

    sim::VirtualStand plain(desc, dut::make_golden("wiper"));
    const std::string want = report::to_csv(plan.execute(plain));

    for (const sim::FaultSpec& noop :
         {sim::FaultSpec{sim::FaultKind::PinOffset, "wiper_lo", 0.0},
          sim::FaultSpec{sim::FaultKind::PinScale, "wiper_lo", 1.0},
          sim::FaultSpec{sim::FaultKind::TimingSkew, "clock", 1.0}}) {
        sim::VirtualStand faulty(
            desc, std::make_shared<sim::FaultyDut>(dut::make_golden("wiper"),
                                                   noop));
        EXPECT_EQ(report::to_csv(plan.execute(faulty)), want) << noop.id();
    }
}

TEST(FaultGrading, PlantedAlwaysDetectableFaultIsDetected) {
    // wiper_lo stuck at supply fails step 0 ("lever off: no wiping",
    // expects Lo) in every schedule — the hand-planted canary.
    const auto result = grade(4, true, {"wiper"});
    ASSERT_EQ(result.families.size(), 1u);
    const auto& faults = result.families[0].faults;
    const auto planted = std::find_if(
        faults.begin(), faults.end(), [](const FaultGrade& f) {
            return f.fault.kind == sim::FaultKind::PinStuckHigh &&
                   f.fault.target == "wiper_lo";
        });
    ASSERT_NE(planted, faults.end());
    EXPECT_EQ(planted->outcome, FaultOutcome::Detected);
    EXPECT_GT(planted->flipped_checks, 0u);
    EXPECT_EQ(planted->first_flip, "wiper_modes/0/wiper_lo");
}

TEST(FaultGrading, WorkerCountDoesNotChangeOutcomes) {
    const auto one = grade(1);
    const auto eight = grade(8);
    EXPECT_EQ(outcome_fingerprint(one), outcome_fingerprint(eight));
    ASSERT_EQ(one.families.size(), eight.families.size());
    for (std::size_t i = 0; i < one.families.size(); ++i) {
        EXPECT_EQ(one.families[i].coverage(), eight.families[i].coverage());
        EXPECT_EQ(one.families[i].detected(), eight.families[i].detected());
    }
    EXPECT_EQ(one.coverage(), eight.coverage());
    EXPECT_TRUE(one.clean());
    EXPECT_TRUE(eight.clean());
}

TEST(FaultGrading, SharedPlanAndPerJobCompileAgree) {
    const auto shared = grade(2, true);
    const auto per_job = grade(2, false);
    EXPECT_EQ(outcome_fingerprint(shared), outcome_fingerprint(per_job));
}

TEST(FaultGrading, AccountingAddsUp) {
    const auto result = grade(2);
    std::size_t families_faults = 0;
    for (const auto& family : result.families) {
        families_faults += family.faults.size();
        EXPECT_EQ(family.detected() + family.undetected() +
                      family.framework_errors(),
                  family.faults.size());
        ASSERT_TRUE(family.coverage().has_value());
        EXPECT_GE(*family.coverage(), 0.0);
        EXPECT_LE(*family.coverage(), 1.0);
        EXPECT_GE(family.golden_wall_s, 0.0);
        for (const auto& f : family.faults) EXPECT_GE(f.wall_s, 0.0);
    }
    EXPECT_EQ(result.fault_count(), families_faults);
    EXPECT_GT(result.detected(), 0u);    // stuck faults always land
    EXPECT_GT(result.undetected(), 0u);  // drift faults never land
    EXPECT_EQ(result.framework_errors(), 0u);
}

TEST(FaultGrading, InjectedFrameworkErrorIsIsolatedNotFatal) {
    // A faulty-backend factory that throws for exactly one fault: that
    // fault must grade as framework-error, every sibling normally, and
    // the overall result must flag unclean.
    const auto clean = grade(1, true, {"wiper"});
    ASSERT_EQ(clean.families.size(), 1u);

    for (unsigned workers : {1u, 4u}) {
        auto setup = kb_grading_setup("wiper");
        ASSERT_FALSE(setup.universe.empty());
        const std::string bad_id = setup.universe.front().id();
        const auto inner = setup.make_faulty;
        setup.make_faulty = [inner, bad_id](
                                const stand::StandDescription& desc,
                                const sim::FaultSpec& fault)
            -> std::shared_ptr<sim::StandBackend> {
            if (fault.id() == bad_id)
                throw StandError("injected instrument failure");
            return inner(desc, fault);
        };

        GradingOptions opts;
        opts.jobs = workers;
        GradingCampaign grading(opts);
        grading.add(std::move(setup));
        EXPECT_GT(grading.queued_faults(), 0u);
        const auto result = grading.run_all();

        ASSERT_EQ(result.families.size(), 1u);
        const auto& family = result.families[0];
        ASSERT_EQ(family.faults.size(), clean.families[0].faults.size());
        EXPECT_EQ(family.framework_errors(), 1u);
        EXPECT_FALSE(result.clean());

        EXPECT_EQ(family.faults[0].outcome, FaultOutcome::FrameworkError);
        EXPECT_EQ(family.faults[0].error_message,
                  "injected instrument failure");
        for (std::size_t i = 1; i < family.faults.size(); ++i) {
            EXPECT_EQ(family.faults[i].outcome,
                      clean.families[0].faults[i].outcome)
                << family.faults[i].fault.id();
        }
    }
}

TEST(FaultGrading, GoldenFailureMarksWholeFamilyAsFrameworkError) {
    // Strip the stand of its variables: the plan cannot bind, the
    // golden run fails, and every fault of that family becomes a
    // framework error — while a sibling family grades normally.
    auto broken = kb_grading_setup("wiper");
    broken.stand = stand::StandDescription("empty-stand");
    broken.plan.reset(); // the pre-bound plan no longer matches the stand

    GradingOptions opts;
    opts.jobs = 2;
    GradingCampaign grading(opts);
    grading.add(std::move(broken));
    grading.add(kb_grading_setup("turn_signal"));
    const auto result = grading.run_all();

    ASSERT_EQ(result.families.size(), 2u);
    EXPECT_TRUE(result.families[0].golden_error);
    EXPECT_FALSE(result.families[0].golden_message.empty());
    EXPECT_EQ(result.families[0].framework_errors(),
              result.families[0].faults.size());
    EXPECT_FALSE(result.clean());

    EXPECT_FALSE(result.families[1].golden_error);
    EXPECT_GT(result.families[1].detected(), 0u);
}

/// The KB's 26 blind spots at the seed of the augmentation PR, pinned
/// fault by fault (DESIGN.md §8/§10): with one exception
/// (interior_light's rear sensor offset trips the initial-state check),
/// every drift fault slips inside the Lo/Ho limits, and the turn-signal
/// and central-lock timing windows accept both clock skews.
const std::vector<std::pair<std::string, std::string>>& blind_spots() {
    static const std::vector<std::pair<std::string, std::string>> spots{
        {"interior_light", "offset@int_ill_f+0.8"},
        {"interior_light", "scale@int_ill_f*0.8"},
        {"interior_light", "stuck_low@int_ill_r"},
        {"interior_light", "scale@int_ill_r*0.8"},
        {"interior_light", "can_drop@ign_st"},
        {"interior_light", "can_corrupt@ign_st"},
        {"wiper", "offset@wiper_lo+0.8"},
        {"wiper", "scale@wiper_lo*0.8"},
        {"wiper", "offset@wiper_hi+0.8"},
        {"wiper", "scale@wiper_hi*0.8"},
        {"power_window", "offset@mot_up+0.8"},
        {"power_window", "scale@mot_up*0.8"},
        {"power_window", "offset@mot_dn+0.8"},
        {"power_window", "scale@mot_dn*0.8"},
        {"central_lock", "offset@lock_act+0.8"},
        {"central_lock", "scale@lock_act*0.8"},
        {"central_lock", "offset@unlock_act+0.8"},
        {"central_lock", "scale@unlock_act*0.8"},
        {"central_lock", "skew@clock*1.35"},
        {"central_lock", "skew@clock*0.7"},
        {"turn_signal", "offset@lamp_l+0.8"},
        {"turn_signal", "scale@lamp_l*0.8"},
        {"turn_signal", "offset@lamp_r+0.8"},
        {"turn_signal", "scale@lamp_r*0.8"},
        {"turn_signal", "skew@clock*1.35"},
        {"turn_signal", "skew@clock*0.7"},
    };
    return spots;
}

/// The blind spots no test on the reference stand can close — proven
/// bounded-equivalent by the augmenter's sweep: the turn-signal stand
/// only has frequency counters on the lamps (drift never crosses the
/// edge threshold), the interior light ignores ign_st entirely, and
/// int_ill_r is a 0 V return line stuck-low/scale cannot move.
const std::vector<std::pair<std::string, std::string>>& unobservable() {
    static const std::vector<std::pair<std::string, std::string>> spots{
        {"interior_light", "stuck_low@int_ill_r"},
        {"interior_light", "scale@int_ill_r*0.8"},
        {"interior_light", "can_drop@ign_st"},
        {"interior_light", "can_corrupt@ign_st"},
        {"turn_signal", "offset@lamp_l+0.8"},
        {"turn_signal", "scale@lamp_l*0.8"},
        {"turn_signal", "offset@lamp_r+0.8"},
        {"turn_signal", "scale@lamp_r*0.8"},
    };
    return spots;
}

TEST(FaultGrading, CharacterizesBlindSpotsBeforeAugmentation) {
    // Characterization of the *un-augmented* grade: if a future suite
    // or engine change starts (or stops) catching one of these, this
    // fails and the coverage change has to be a deliberate, reviewed
    // event.
    const auto result = grade(4);
    std::vector<std::pair<std::string, std::string>> undetected;
    for (const auto& family : result.families)
        for (const auto& f : family.faults)
            if (f.outcome == FaultOutcome::Undetected)
                undetected.emplace_back(family.family, f.fault.id());
    EXPECT_EQ(undetected, blind_spots());
    // In particular the drift blind spot is nearly total: exactly one
    // offset fault in the whole KB is caught today.
    std::size_t drift_detected = 0;
    for (const auto& family : result.families)
        for (const auto& f : family.faults)
            if ((f.fault.kind == sim::FaultKind::PinOffset ||
                 f.fault.kind == sim::FaultKind::PinScale) &&
                f.outcome == FaultOutcome::Detected)
                ++drift_detected;
    EXPECT_EQ(drift_detected, 1u);
}

TEST(FaultGrading, AugmenterClosesEveryObservableBlindSpot) {
    // The regression floor of the augmentation PR: every one of the 26
    // pinned blind spots is either *detected* by the augmented suite or
    // carries a bounded-equivalence untestable certificate — none may
    // silently fall back to undetected, so KB coverage can never
    // regress below the >= 90 % floor CI enforces.
    AugmentOptions opts;
    opts.jobs = 4;
    const auto result = augment_kb(opts);
    ASSERT_TRUE(result.clean());

    std::map<std::pair<std::string, std::string>, FaultOutcome> outcome;
    for (std::size_t fi = 0; fi < result.families.size(); ++fi) {
        const auto& family = result.families[fi];
        for (std::size_t i = 0; i < family.after.entries.size(); ++i)
            outcome[{family.family, family.after.entries[i].id}] =
                family.after.entries[i].outcome;
    }

    const auto& untestable = unobservable();
    for (const auto& spot : blind_spots()) {
        const auto it = outcome.find(spot);
        ASSERT_NE(it, outcome.end()) << spot.first << "/" << spot.second;
        const bool expect_untestable =
            std::find(untestable.begin(), untestable.end(), spot) !=
            untestable.end();
        EXPECT_EQ(it->second, expect_untestable
                                  ? FaultOutcome::Untestable
                                  : FaultOutcome::Detected)
            << spot.first << "/" << spot.second << ": "
            << fault_outcome_name(it->second);
    }

    const auto after = result.after();
    ASSERT_TRUE(after.coverage().has_value());
    EXPECT_GE(*after.coverage(), 0.9);
    EXPECT_EQ(after.undetected(), 0u);
}

TEST(FaultGrading, CoverageGroupMirrorsFamilyGrade) {
    const auto result = grade(2, true, {"wiper"});
    ASSERT_EQ(result.families.size(), 1u);
    const auto& family = result.families[0];
    const CoverageGroup group = family.coverage_group();

    EXPECT_EQ(group.name, "wiper");
    EXPECT_EQ(group.status, "PASS");
    EXPECT_FALSE(group.setup_error);
    ASSERT_EQ(group.entries.size(), family.faults.size());
    EXPECT_EQ(group.detected(), family.detected());
    EXPECT_EQ(group.undetected(), family.undetected());
    EXPECT_EQ(group.untestable(), 0u); // not a KB outcome
    EXPECT_EQ(group.framework_errors(), family.framework_errors());
    EXPECT_EQ(group.coverage(), family.coverage());
    for (std::size_t i = 0; i < group.entries.size(); ++i) {
        const auto& e = group.entries[i];
        EXPECT_EQ(e.id, family.faults[i].fault.id());
        EXPECT_EQ(e.outcome, family.faults[i].outcome);
        // KB attribution is by check site, never by pattern index.
        EXPECT_EQ(e.detected_by, std::nullopt);
        if (e.outcome == FaultOutcome::Detected) {
            EXPECT_EQ(e.detected_at, family.faults[i].first_flip);
        }
    }

    const CoverageMatrix matrix = result.to_coverage();
    ASSERT_EQ(matrix.groups.size(), 1u);
    EXPECT_EQ(matrix.workers, result.workers);
    EXPECT_EQ(matrix.coverage(), result.coverage());
    EXPECT_TRUE(matrix.clean());
}

TEST(FaultGrading, KbFamilyUniverseGradesLikeGradeKb) {
    KbFamilyUniverse universe("wiper");
    EXPECT_EQ(universe.name(), "wiper");
    EXPECT_EQ(universe.fault_count(), kb_fault_universe("wiper").size());
    const CoverageGroup via_universe = universe.grade(2);
    const CoverageGroup direct =
        grade(2, true, {"wiper"}).families[0].coverage_group();
    CoverageMatrix a, b;
    a.groups.push_back(via_universe);
    b.groups.push_back(direct);
    EXPECT_EQ(coverage_fingerprint(a), coverage_fingerprint(b));
    EXPECT_THROW(KbFamilyUniverse("toaster"), SemanticError);
}

TEST(FaultGrading, UnknownFamilyThrowsSemanticError) {
    EXPECT_THROW((void)kb_fault_universe("toaster"), SemanticError);
    EXPECT_THROW((void)kb_grading_setup("toaster"), SemanticError);
}

TEST(FaultGrading, QueueLifecycle) {
    GradingCampaign grading;
    EXPECT_EQ(grading.queued_faults(), 0u);
    grading.add_kb_family("wiper");
    const std::size_t queued = grading.queued_faults();
    EXPECT_GT(queued, 0u);
    const auto first = grading.run_all();
    EXPECT_EQ(first.families.size(), 1u);
    EXPECT_EQ(first.families[0].faults.size(), queued);
    // run_all clears the queue; a second run grades nothing.
    EXPECT_EQ(grading.queued_faults(), 0u);
    const auto second = grading.run_all();
    EXPECT_TRUE(second.families.empty());
    EXPECT_TRUE(second.clean());
    // The kernel's zero-fault rule: an empty grading is n/a, never a
    // fabricated 100 %.
    EXPECT_EQ(second.coverage(), std::nullopt);
}

} // namespace
} // namespace ctk::core
