// Extended engine tests: policy choice, tick invariance, determinism,
// engine reuse, bus-expectation failures.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/kb.hpp"
#include "dut/catalogue.hpp"
#include "model/paper.hpp"
#include "report/report.hpp"
#include "script/xml_io.hpp"
#include "sim/virtual_stand.hpp"
#include "stand/paper.hpp"

namespace ctk::core {
namespace {

const model::MethodRegistry kReg = model::MethodRegistry::builtin();

TestEngine make_paper_engine() {
    auto desc = stand::paper::figure1_stand();
    return TestEngine(desc, std::make_shared<sim::VirtualStand>(
                                desc, dut::make_golden("interior_light")));
}

TEST(EngineExtra, NullBackendRejected) {
    EXPECT_THROW(TestEngine(stand::paper::figure1_stand(), nullptr), Error);
}

TEST(EngineExtra, MatchingPolicyRunsThePaperSuite) {
    const auto script = script::compile(model::paper::suite(), kReg);
    TestEngine engine = make_paper_engine();
    RunOptions opts;
    opts.policy = stand::AllocPolicy::Matching;
    EXPECT_TRUE(engine.run(script, opts).passed());
}

TEST(EngineExtra, VerdictsAreTickInvariant) {
    const auto script = script::compile(model::paper::suite(), kReg);
    std::vector<std::string> verdicts;
    for (double tick : {0.01, 0.05, 0.1}) {
        TestEngine engine = make_paper_engine();
        RunOptions opts;
        opts.tick_s = tick;
        const auto r = engine.run(script, opts);
        std::string v;
        for (const auto& s : r.tests[0].steps) v += s.passed ? 'P' : 'F';
        verdicts.push_back(v);
        EXPECT_TRUE(r.passed()) << "tick " << tick;
    }
    EXPECT_EQ(verdicts[0], verdicts[1]);
    EXPECT_EQ(verdicts[1], verdicts[2]);
}

TEST(EngineExtra, TickLargerThanDwellIsClamped) {
    const auto script = script::compile(model::paper::suite(), kReg);
    TestEngine engine = make_paper_engine();
    RunOptions opts;
    opts.tick_s = 10.0; // larger than the 0.5 s steps
    const auto r = engine.run(script, opts);
    EXPECT_TRUE(r.passed());
}

TEST(EngineExtra, ZeroInitSettleStillPasses) {
    const auto script = script::compile(model::paper::suite(), kReg);
    TestEngine engine = make_paper_engine();
    RunOptions opts;
    opts.init_settle_s = 0.0;
    EXPECT_TRUE(engine.run(script, opts).passed());
}

TEST(EngineExtra, EngineObjectIsReusableAndDeterministic) {
    const auto script = script::compile(model::paper::suite(), kReg);
    TestEngine engine = make_paper_engine();
    const auto a = engine.run(script);
    const auto b = engine.run(script);
    ASSERT_EQ(a.tests.size(), b.tests.size());
    for (std::size_t i = 0; i < a.tests[0].steps.size(); ++i) {
        const auto& sa = a.tests[0].steps[i];
        const auto& sb = b.tests[0].steps[i];
        EXPECT_EQ(sa.passed, sb.passed);
        ASSERT_EQ(sa.checks.size(), sb.checks.size());
        for (std::size_t j = 0; j < sa.checks.size(); ++j)
            EXPECT_DOUBLE_EQ(sa.checks[j].measured, sb.checks[j].measured);
    }
}

TEST(EngineExtra, BusExpectationFailureExplainsPayloads) {
    // swapped_actuators also swaps lock_state? No — the mutant swaps the
    // *drivers*; locked_ state itself flips with the command, so
    // lock_state stays correct and the failure comes from the actuator
    // pins. Force a bus mismatch instead: expect StUnlocked right after
    // locking.
    model::TestSuite suite = kb::suite_for("central_lock");
    for (auto& test : suite.tests)
        for (auto& step : test.steps)
            for (auto& a : step.assignments)
                if (a.status == "StLocked") a.status = "StUnlocked";
    const auto script = script::compile(suite, kReg);
    auto desc = kb::stand_for("central_lock");
    TestEngine engine(desc, std::make_shared<sim::VirtualStand>(
                                desc, dut::make_golden("central_lock")));
    const auto r = engine.run(script);
    ASSERT_FALSE(r.passed());
    bool found = false;
    for (const auto& s : r.tests[0].steps)
        for (const auto& c : s.checks)
            if (!c.passed && c.method == "get_can") {
                found = true;
                EXPECT_EQ(c.expected_data, "10B");
                EXPECT_EQ(c.measured_data, "01B");
                EXPECT_NE(c.message.find("expected"), std::string::npos);
            }
    EXPECT_TRUE(found);
}

TEST(EngineExtra, CsvReportForFailingRunMarksZeroes) {
    const auto mutants = dut::mutants_of("interior_light");
    const auto it = std::find_if(
        mutants.begin(), mutants.end(),
        [](const dut::Mutant& m) { return m.name == "stuck_off"; });
    const auto script = script::compile(model::paper::suite(), kReg);
    auto desc = stand::paper::figure1_stand();
    TestEngine engine(desc,
                      std::make_shared<sim::VirtualStand>(desc, it->make()));
    const auto r = engine.run(script);
    const std::string csv = report::to_csv(r);
    EXPECT_NE(csv.find(",0\n"), std::string::npos); // at least one fail row
    const std::string sheet =
        report::render_test_sheet(script.tests[0], r.tests[0]);
    EXPECT_NE(sheet.find("FAIL"), std::string::npos);
}

TEST(EngineExtra, NoisyDvmPassesWithWidenedLoStatus) {
    // The robustness fix from examples/supplier_exchange, as a regression
    // test: Lo = [-0.3, 0.3]·UBATT absorbs ±20 mV of DVM noise.
    model::TestSuite suite = model::paper::suite();
    model::StatusTable widened;
    for (model::StatusDef st : suite.statuses.statuses()) {
        if (st.name == "Lo") st.min = -0.3;
        widened.add(std::move(st));
    }
    suite.statuses = std::move(widened);
    const auto script = script::compile(suite, kReg);

    sim::VirtualStandOptions noisy;
    noisy.dvm_gain = 1.005;
    noisy.dvm_noise = 0.02;
    auto desc = stand::paper::figure1_stand();
    TestEngine engine(
        desc, std::make_shared<sim::VirtualStand>(
                  desc, dut::make_golden("interior_light"), noisy));
    EXPECT_TRUE(engine.run(script).passed());
}

TEST(EngineExtra, AllKbFamiliesPassUnderMatchingPolicy) {
    for (const auto& family : kb::families()) {
        const auto script = script::compile(kb::suite_for(family), kReg);
        auto desc = kb::stand_for(family);
        TestEngine engine(desc, std::make_shared<sim::VirtualStand>(
                                    desc, dut::make_golden(family)));
        RunOptions opts;
        opts.policy = stand::AllocPolicy::Matching;
        EXPECT_TRUE(engine.run(script, opts).passed()) << family;
    }
}

} // namespace
} // namespace ctk::core
