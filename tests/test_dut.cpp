// Unit tests: behavioural ECU models (the DUT substrate).
#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "dut/catalogue.hpp"

namespace ctk::dut {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Advance a DUT in small ticks (mirrors the executor's sampling).
void run(Dut& d, double seconds, double tick = 0.05) {
    double t = 0;
    while (t < seconds - 1e-9) {
        const double dt = std::min(tick, seconds - t);
        d.step(dt);
        t += dt;
    }
}

std::vector<bool> bits(std::initializer_list<int> vals) {
    std::vector<bool> out;
    for (int v : vals) out.push_back(v != 0);
    return out;
}

// ---------------------------------------------------------------------------
// Interior light
// ---------------------------------------------------------------------------

class InteriorLight : public ::testing::Test {
protected:
    InteriorLightEcu ecu;
    void night(bool on) { ecu.can_receive("night", bits({on ? 1 : 0})); }
    void door(const char* pin, bool open) {
        ecu.set_pin_resistance(pin, open ? 0.0 : kInf);
    }
    double lamp() {
        return ecu.pin_voltage("int_ill_f") - ecu.pin_voltage("int_ill_r");
    }
};

TEST_F(InteriorLight, OffDuringDayEvenWithDoorOpen) {
    night(false);
    door("ds_fl", true);
    run(ecu, 0.5);
    EXPECT_DOUBLE_EQ(lamp(), 0.0);
}

TEST_F(InteriorLight, OnAtNightWithAnyDoorOpen) {
    night(true);
    for (const char* pin : {"ds_fl", "ds_fr", "ds_rl", "ds_rr"}) {
        ecu.reset();
        night(true);
        door(pin, true);
        run(ecu, 0.5);
        EXPECT_DOUBLE_EQ(lamp(), 12.0) << pin;
    }
}

TEST_F(InteriorLight, OffAtNightWithDoorsClosed) {
    night(true);
    run(ecu, 0.5);
    EXPECT_DOUBLE_EQ(lamp(), 0.0);
}

TEST_F(InteriorLight, TimesOutAfter300Seconds) {
    night(true);
    door("ds_fl", true);
    run(ecu, 299.0, 0.5);
    EXPECT_GT(lamp(), 0.0);
    run(ecu, 2.0, 0.5);
    EXPECT_DOUBLE_EQ(lamp(), 0.0);
}

TEST_F(InteriorLight, ClosingDoorsRearmsTheTimeout) {
    night(true);
    door("ds_fl", true);
    run(ecu, 299.0, 0.5);
    door("ds_fl", false);
    run(ecu, 1.0);
    door("ds_fl", true);
    run(ecu, 100.0, 0.5);
    EXPECT_DOUBLE_EQ(lamp(), 12.0); // fresh budget
}

TEST_F(InteriorLight, IgnitionStateDoesNotGateTheLamp) {
    night(true);
    door("ds_fl", true);
    ecu.can_receive("ign_st", bits({0, 0, 0, 1}));
    run(ecu, 0.5);
    EXPECT_DOUBLE_EQ(lamp(), 12.0);
}

TEST_F(InteriorLight, SupplyVoltageTracksUbatt) {
    ecu.set_supply(13.5);
    night(true);
    door("ds_fl", true);
    run(ecu, 0.5);
    EXPECT_DOUBLE_EQ(lamp(), 13.5);
}

TEST_F(InteriorLight, ResetClearsState) {
    night(true);
    door("ds_fl", true);
    run(ecu, 0.5);
    EXPECT_TRUE(ecu.lit());
    ecu.reset();
    EXPECT_FALSE(ecu.lit());
    run(ecu, 0.5);
    EXPECT_DOUBLE_EQ(lamp(), 0.0); // stimuli cleared too
}

TEST_F(InteriorLight, HighResistanceCountsAsClosedDoor) {
    night(true);
    ecu.set_pin_resistance("ds_fl", 5000.0); // open contact = door closed
    run(ecu, 0.5);
    EXPECT_DOUBLE_EQ(lamp(), 0.0);
    ecu.set_pin_resistance("ds_fl", 50.0); // below threshold = door open
    run(ecu, 0.5);
    EXPECT_DOUBLE_EQ(lamp(), 12.0);
}

// ---------------------------------------------------------------------------
// Wiper
// ---------------------------------------------------------------------------

class Wiper : public ::testing::Test {
protected:
    WiperEcu ecu;
    void lever(int code) {
        ecu.can_receive("wiper_sw", bits({(code >> 1) & 1, code & 1}));
    }
};

TEST_F(Wiper, OffMeansNoOutput) {
    lever(0);
    run(ecu, 1.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_lo"), 0.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_hi"), 0.0);
}

TEST_F(Wiper, SlowRunsLowWindingContinuously) {
    lever(2);
    run(ecu, 3.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_lo"), 12.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_hi"), 0.0);
}

TEST_F(Wiper, FastRunsHighWinding) {
    lever(3);
    run(ecu, 3.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_lo"), 0.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_hi"), 12.0);
}

TEST_F(Wiper, IntervalAlternatesWipeAndPause) {
    ecu.set_pin_resistance("int_pot", 0.0); // minimum interval: 2 s pause
    lever(1);
    run(ecu, 0.5); // inside the 1 s wipe
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_lo"), 12.0);
    run(ecu, 1.0); // t=1.5: pause (1..3)
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_lo"), 0.0);
    run(ecu, 2.0); // t=3.5: next wipe
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_lo"), 12.0);
}

TEST_F(Wiper, PotentiometerStretchesTheInterval) {
    ecu.set_pin_resistance("int_pot", 50000.0);
    EXPECT_DOUBLE_EQ(ecu.current_interval_s(), 20.0);
    ecu.set_pin_resistance("int_pot", 0.0);
    EXPECT_DOUBLE_EQ(ecu.current_interval_s(), 2.0);
    ecu.set_pin_resistance("int_pot", 25000.0);
    EXPECT_DOUBLE_EQ(ecu.current_interval_s(), 11.0);
}

TEST_F(Wiper, LongIntervalStillPausedAt19s) {
    ecu.set_pin_resistance("int_pot", 50000.0);
    lever(1);
    run(ecu, 19.5, 0.5); // wipe 1 s + pause 20 s: still pausing
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_lo"), 0.0);
    run(ecu, 2.0, 0.5); // t=21.5: wiping again
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("wiper_lo"), 12.0);
}

// ---------------------------------------------------------------------------
// Power window
// ---------------------------------------------------------------------------

class PowerWindow : public ::testing::Test {
protected:
    PowerWindowEcu ecu;
    void ignition(bool on) { ecu.can_receive("ign_st", bits({on ? 1 : 0})); }
    void press(const char* pin, bool on) {
        ecu.set_pin_resistance(pin, on ? 0.0 : kInf);
    }
};

TEST_F(PowerWindow, NoMovementWithIgnitionOff) {
    ignition(false);
    press("win_up", true);
    run(ecu, 1.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_up"), 0.0);
    EXPECT_DOUBLE_EQ(ecu.position(), 0.0);
}

TEST_F(PowerWindow, ClosesWhilePressed) {
    ignition(true);
    press("win_up", true);
    run(ecu, 2.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_up"), 12.0);
    EXPECT_NEAR(ecu.position(), 50.0, 2.0); // 2 s of a 4 s stroke
}

TEST_F(PowerWindow, StopsAtTheTop) {
    ignition(true);
    press("win_up", true);
    run(ecu, 6.0);
    EXPECT_DOUBLE_EQ(ecu.position(), 100.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_up"), 0.0);
}

TEST_F(PowerWindow, AntiPinchReversesAndLatches) {
    ignition(true);
    press("win_up", true);
    run(ecu, 1.0);
    press("pinch", true);
    run(ecu, 0.3);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_dn"), 12.0); // reversing
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_up"), 0.0);
    run(ecu, 1.0); // reversal (1 s) over, still latched
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_dn"), 0.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_up"), 0.0);
    press("pinch", false);
    run(ecu, 0.5); // still latched while switch held
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_up"), 0.0);
    press("win_up", false);
    run(ecu, 0.2);
    press("win_up", true); // fresh press works again
    run(ecu, 0.5);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_up"), 12.0);
}

TEST_F(PowerWindow, OpensAndStopsAtBottom) {
    ignition(true);
    press("win_up", true);
    run(ecu, 6.0); // fully closed
    press("win_up", false);
    press("win_dn", true);
    run(ecu, 2.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_dn"), 12.0);
    run(ecu, 4.0);
    EXPECT_DOUBLE_EQ(ecu.position(), 0.0);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("mot_dn"), 0.0);
}

// ---------------------------------------------------------------------------
// Central lock
// ---------------------------------------------------------------------------

class CentralLock : public ::testing::Test {
protected:
    CentralLockEcu ecu;
    void cmd(int code) {
        ecu.can_receive("lock_cmd", bits({(code >> 1) & 1, code & 1}));
    }
    void speed(unsigned kmh) {
        std::vector<bool> b;
        for (int i = 7; i >= 0; --i) b.push_back(((kmh >> i) & 1) != 0);
        ecu.can_receive("speed", b);
    }
};

TEST_F(CentralLock, LockCommandPulsesActuator) {
    cmd(1);
    run(ecu, 0.2);
    EXPECT_TRUE(ecu.locked());
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("lock_act"), 12.0);
    run(ecu, 0.6); // pulse (0.5 s) over
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("lock_act"), 0.0);
    EXPECT_TRUE(ecu.locked());
}

TEST_F(CentralLock, UnlockCommandPulsesOtherActuator) {
    cmd(1);
    run(ecu, 1.0);
    cmd(2);
    run(ecu, 0.2);
    EXPECT_FALSE(ecu.locked());
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("unlock_act"), 12.0);
}

TEST_F(CentralLock, RepeatedLockCommandDoesNotRepulse) {
    cmd(1);
    run(ecu, 1.0);
    cmd(0);
    run(ecu, 0.2);
    cmd(1); // already locked: edge fires but no actuation
    run(ecu, 0.2);
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("lock_act"), 0.0);
}

TEST_F(CentralLock, AutoLocksAboveThresholdOncePerPhase) {
    speed(50);
    run(ecu, 0.2);
    EXPECT_TRUE(ecu.locked());
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("lock_act"), 12.0);
    cmd(2); // unlock while still fast: must NOT immediately re-lock
    run(ecu, 1.0);
    EXPECT_FALSE(ecu.locked());
    speed(0); // slow down re-arms
    run(ecu, 0.2);
    speed(50);
    run(ecu, 0.2);
    EXPECT_TRUE(ecu.locked());
}

TEST_F(CentralLock, CrashForcesUnlock) {
    cmd(1);
    run(ecu, 1.0);
    EXPECT_TRUE(ecu.locked());
    ecu.set_pin_resistance("crash", 0.0);
    run(ecu, 0.2);
    EXPECT_FALSE(ecu.locked());
    EXPECT_DOUBLE_EQ(ecu.pin_voltage("unlock_act"), 12.0);
}

// ---------------------------------------------------------------------------
// Turn signal
// ---------------------------------------------------------------------------

class TurnSignal : public ::testing::Test {
protected:
    TurnSignalEcu ecu;
    void lever(int code) {
        ecu.can_receive("turn_sw", bits({(code >> 1) & 1, code & 1}));
    }
    /// Count rising edges on a lamp over `seconds`.
    int edges(const char* pin, double seconds) {
        int count = 0;
        bool last = ecu.pin_voltage(pin) > 6.0;
        double t = 0;
        while (t < seconds) {
            ecu.step(0.01);
            t += 0.01;
            const bool now = ecu.pin_voltage(pin) > 6.0;
            if (now && !last) ++count;
            last = now;
        }
        return count;
    }
};

TEST_F(TurnSignal, LeftLeverFlashesLeftOnly) {
    lever(1);
    EXPECT_EQ(edges("lamp_r", 4.0), 0);
    lever(1);
    const int left = edges("lamp_l", 4.0);
    EXPECT_GE(left, 5); // 1.5 Hz over 4 s ≈ 6 edges
    EXPECT_LE(left, 7);
}

TEST_F(TurnSignal, HazardButtonTogglesBothLamps) {
    ecu.set_pin_resistance("hazard", 0.0); // press
    ecu.step(0.05);
    EXPECT_TRUE(ecu.hazard_active());
    ecu.set_pin_resistance("hazard", 1e9); // release
    ecu.step(0.05);
    EXPECT_TRUE(ecu.hazard_active()); // still on (toggle)
    EXPECT_GE(edges("lamp_l", 2.0), 2);
    EXPECT_GE(edges("lamp_r", 2.0), 2);
    ecu.set_pin_resistance("hazard", 0.0); // press again: off
    ecu.step(0.05);
    EXPECT_FALSE(ecu.hazard_active());
}

TEST_F(TurnSignal, HoldingTheButtonTogglesOnlyOnce) {
    ecu.set_pin_resistance("hazard", 0.0);
    run(ecu, 1.0);
    EXPECT_TRUE(ecu.hazard_active());
}

// ---------------------------------------------------------------------------
// Catalogue
// ---------------------------------------------------------------------------

TEST(Catalogue, GoldenFactoriesForAllFamilies) {
    for (const char* fam : {"interior_light", "wiper", "power_window",
                            "central_lock", "turn_signal"}) {
        const auto d = make_golden(fam);
        ASSERT_NE(d, nullptr) << fam;
    }
    EXPECT_THROW((void)make_golden("toaster"), ctk::SemanticError);
}

TEST(Catalogue, MutantsCoverEveryFamily) {
    const auto all = mutant_catalogue();
    EXPECT_EQ(all.size(), 24u);
    EXPECT_EQ(mutants_of("interior_light").size(), 8u);
    EXPECT_EQ(mutants_of("wiper").size(), 4u);
    EXPECT_TRUE(mutants_of("toaster").empty());
    for (const auto& m : all) {
        const auto d = m.make();
        ASSERT_NE(d, nullptr) << m.ecu << "/" << m.name;
    }
}

TEST(Catalogue, MutantsDifferFromGolden) {
    // Spot check: the stuck_off mutant never lights.
    const auto mutants = mutants_of("interior_light");
    const auto it =
        std::find_if(mutants.begin(), mutants.end(),
                     [](const Mutant& m) { return m.name == "stuck_off"; });
    ASSERT_NE(it, mutants.end());
    const auto d = it->make();
    d->can_receive("night", {true});
    d->set_pin_resistance("ds_fl", 0.0);
    run(*d, 0.5);
    EXPECT_DOUBLE_EQ(d->pin_voltage("int_ill_f"), 0.0);
}

} // namespace
} // namespace ctk::dut
