// Unit tests: XML DOM, writer, parser, round-trips.
#include <gtest/gtest.h>

#include "core/kb.hpp"
#include "script/xml_io.hpp"
#include "xml/xml.hpp"

namespace ctk::xml {
namespace {

TEST(XmlWrite, PaperListingShape) {
    // The §3 listing: <signal name="int_ill">
    //                   <get_u u_max="(1.1*ubatt)" u_min="(0.7*ubatt)" />
    //                 </signal>
    Node sig("signal");
    sig.set_attr("name", "int_ill");
    Node& m = sig.add_child("get_u");
    m.set_attr("u_max", "(1.1*ubatt)");
    m.set_attr("u_min", "(0.7*ubatt)");

    WriteOptions opts;
    opts.declaration = false;
    const std::string out = write(sig, opts);
    EXPECT_EQ(out,
              "<signal name=\"int_ill\">\n"
              "  <get_u u_max=\"(1.1*ubatt)\" u_min=\"(0.7*ubatt)\" />\n"
              "</signal>\n");
}

TEST(XmlWrite, EscapesSpecialCharacters) {
    Node n("a");
    n.set_attr("v", "x<y&\"z\"");
    n.set_text("a>b");
    WriteOptions opts;
    opts.declaration = false;
    const std::string out = write(n, opts);
    EXPECT_NE(out.find("x&lt;y&amp;&quot;z&quot;"), std::string::npos);
    EXPECT_NE(out.find("a&gt;b"), std::string::npos);
}

TEST(XmlParse, MinimalDocument) {
    const Node n = parse("<root a=\"1\"><child/></root>");
    EXPECT_EQ(n.name(), "root");
    EXPECT_EQ(*n.attr("a"), "1");
    ASSERT_EQ(n.children().size(), 1u);
    EXPECT_EQ(n.children()[0].name(), "child");
}

TEST(XmlParse, DeclarationCommentsCdataEntities) {
    const Node n = parse("<?xml version=\"1.0\"?>\n"
                         "<!-- top comment -->\n"
                         "<r><!-- in --><![CDATA[1<2]]> &amp; more</r>");
    EXPECT_EQ(n.text(), "1<2 & more");
}

TEST(XmlParse, NumericCharacterReferences) {
    const Node n = parse("<r a=\"&#65;&#x42;\"/>");
    EXPECT_EQ(*n.attr("a"), "AB");
}

TEST(XmlParse, AttrNumberParsesExpressionsAsNumbersOnly) {
    const Node n = parse("<r a=\"2.5\" b=\"(1*x)\"/>");
    EXPECT_DOUBLE_EQ(*n.attr_number("a"), 2.5);
    EXPECT_FALSE(n.attr_number("b").has_value());
    EXPECT_FALSE(n.attr_number("missing").has_value());
}

TEST(XmlParse, RequireAttrThrowsWhenMissing) {
    const Node n = parse("<r a=\"1\"/>");
    EXPECT_EQ(n.require_attr("a"), "1");
    EXPECT_THROW((void)n.require_attr("b"), SemanticError);
}

struct BadXmlCase {
    const char* name;
    const char* text;
};

class XmlParseErrors : public ::testing::TestWithParam<BadXmlCase> {};

TEST_P(XmlParseErrors, Throws) {
    EXPECT_THROW((void)parse(GetParam().text), ParseError) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParseErrors,
    ::testing::Values(
        BadXmlCase{"empty", ""},
        BadXmlCase{"mismatch", "<a></b>"},
        BadXmlCase{"unterminated_tag", "<a"},
        BadXmlCase{"unterminated_attr", "<a v=\"x/>"},
        BadXmlCase{"duplicate_attr", "<a v=\"1\" v=\"2\"/>"},
        BadXmlCase{"missing_close", "<a><b></b>"},
        BadXmlCase{"trailing_content", "<a/><b/>"},
        BadXmlCase{"bad_entity", "<a>&nope;</a>"},
        BadXmlCase{"unterminated_comment", "<!-- x"},
        BadXmlCase{"unterminated_cdata", "<a><![CDATA[x</a>"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(XmlParse, ReportsLineAndColumn) {
    try {
        (void)parse("<a>\n  <b>\n</a>");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.pos().line, 3u);
    }
}

class XmlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlRoundTrip, ParseWriteParseIsStable) {
    const Node first = parse(GetParam());
    const std::string emitted = write(first);
    const Node second = parse(emitted);
    EXPECT_TRUE(first == second) << emitted;
}

INSTANTIATE_TEST_SUITE_P(
    Documents, XmlRoundTrip,
    ::testing::Values(
        "<r/>",
        "<r a=\"1\" b=\"two\"/>",
        "<r><c1/><c2 x=\"y\"><d/></c2></r>",
        "<r>some text</r>",
        "<r a=\"&lt;&amp;&gt;\">esc &quot;q&quot;</r>",
        "<testscript name=\"s\"><test name=\"t\"><step nr=\"0\" dt=\"0.5\">"
        "<signal name=\"int_ill\"><get_u u_max=\"(1.1*ubatt)\" "
        "u_min=\"(0.7*ubatt)\"/></signal></step></test></testscript>"));

TEST(XmlNode, ChildLookupHelpers) {
    const Node n = parse("<r><a i=\"1\"/><b/><a i=\"2\"/></r>");
    EXPECT_EQ(n.child("b")->name(), "b");
    EXPECT_EQ(n.child("zz"), nullptr);
    const auto all_a = n.children_named("a");
    ASSERT_EQ(all_a.size(), 2u);
    EXPECT_EQ(*all_a[1]->attr("i"), "2");
}

TEST(XmlNode, SetAttrReplacesExisting) {
    Node n("x");
    n.set_attr("k", "1");
    n.set_attr("k", "2");
    ASSERT_EQ(n.attrs().size(), 1u);
    EXPECT_EQ(*n.attr("k"), "2");
}

TEST(XmlWrite, SingleLineModeHasNoNewlines) {
    Node n("a");
    n.add_child("b");
    WriteOptions opts;
    opts.declaration = false;
    opts.indent = -1;
    EXPECT_EQ(write(n, opts).find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden round-trips at the raw XML layer: the serialised script of every
// builtin KB family must survive parse → write → parse with DOM equality
// and a stable canonical text form.
// ---------------------------------------------------------------------------

class KbScriptXml : public ::testing::TestWithParam<std::string> {};

TEST_P(KbScriptXml, ParseWriteParseIsStableForCompiledSuites) {
    const auto registry = ctk::model::MethodRegistry::builtin();
    const std::string text = script::to_xml_text(
        script::compile(core::kb::suite_for(GetParam()), registry));

    const Node first = parse(text);
    const std::string emitted = write(first);
    const Node second = parse(emitted);
    EXPECT_TRUE(first == second) << emitted;
    EXPECT_EQ(write(second), emitted);
}

INSTANTIATE_TEST_SUITE_P(KnowledgeBase, KbScriptXml,
                         ::testing::ValuesIn(ctk::core::kb::families()),
                         [](const auto& info) { return info.param; });

} // namespace
} // namespace ctk::xml
