// Unit + property tests: netlists, .bench I/O, logic sim, fault sim, ATPG.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gate/atpg.hpp"
#include "gate/bench_io.hpp"
#include "gate/circuits.hpp"
#include "gate/gate_dut.hpp"
#include "gate/tpg.hpp"

namespace ctk::gate {
namespace {

// ---------------------------------------------------------------------------
// Netlist structure
// ---------------------------------------------------------------------------

TEST(NetlistTest, BuildAndQuery) {
    Netlist n("t");
    const GateId a = n.add_input("a");
    const GateId b = n.add_input("b");
    const GateId g = n.add_gate(GateType::And, "g", {a, b});
    n.mark_output(g);
    n.validate();
    EXPECT_EQ(n.size(), 3u);
    EXPECT_EQ(n.require("g"), g);
    EXPECT_EQ(n.find("zz"), GateId{-1});
    EXPECT_THROW((void)n.require("zz"), SemanticError);
    EXPECT_FALSE(n.is_sequential());
}

TEST(NetlistTest, StructuralValidation) {
    Netlist dup("t");
    dup.add_input("a");
    EXPECT_THROW(dup.add_input("a"), SemanticError);

    Netlist bad_fanin("t");
    const GateId a = bad_fanin.add_input("a");
    EXPECT_THROW(bad_fanin.add_gate(GateType::Not, "n", {a + 5}),
                 SemanticError);

    Netlist no_out("t");
    no_out.add_input("a");
    EXPECT_THROW(no_out.validate(), SemanticError);

    Netlist arity("t");
    const GateId x = arity.add_input("x");
    arity.add_gate(GateType::And, "g", {x}); // AND needs >= 2
    arity.mark_output(arity.require("g"));
    EXPECT_THROW(arity.validate(), SemanticError);
}

TEST(NetlistTest, TopoOrderRespectsDependencies) {
    const Netlist n = circuits::c17();
    const auto order = n.topo_order();
    std::vector<std::size_t> pos(n.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[static_cast<std::size_t>(order[i])] = i;
    for (std::size_t g = 0; g < n.size(); ++g)
        for (GateId f : n.gate(static_cast<GateId>(g)).fanins)
            EXPECT_LT(pos[static_cast<std::size_t>(f)], pos[g]);
}

TEST(NetlistTest, CombinationalCycleDetected) {
    Netlist n("t");
    const GateId a = n.add_input("a");
    // g1 = AND(a, g2); g2 = NOT(g1) — a cycle without a DFF.
    const GateId g1 = n.add_gate_unchecked(GateType::And, "g1", {a, 2});
    n.add_gate_unchecked(GateType::Not, "g2", {g1});
    n.mark_output(g1);
    EXPECT_THROW((void)n.topo_order(), SemanticError);
}

TEST(NetlistTest, DffBreaksTheLoop) {
    const Netlist n = circuits::counter(3);
    EXPECT_TRUE(n.is_sequential());
    EXPECT_EQ(n.dffs().size(), 3u);
    EXPECT_NO_THROW((void)n.topo_order());
}

// ---------------------------------------------------------------------------
// .bench I/O
// ---------------------------------------------------------------------------

TEST(BenchIo, ParsesC17Shape) {
    const Netlist n = circuits::c17();
    EXPECT_EQ(n.inputs().size(), 5u);
    EXPECT_EQ(n.outputs().size(), 2u);
    EXPECT_EQ(n.size(), 11u); // 5 PI + 6 NAND
}

TEST(BenchIo, RoundTrip) {
    for (const Netlist& ref :
         {circuits::c17(), circuits::ripple_adder(4), circuits::counter(4)}) {
        const Netlist back = parse_bench(emit_bench(ref));
        EXPECT_EQ(back.size(), ref.size());
        EXPECT_EQ(back.inputs().size(), ref.inputs().size());
        EXPECT_EQ(back.outputs().size(), ref.outputs().size());
        EXPECT_EQ(back.dffs().size(), ref.dffs().size());
        // Behavioural equivalence on a few patterns.
        const LogicSim sa(ref), sb(back);
        Rng rng(3);
        std::vector<PackedWord> in(ref.inputs().size());
        for (auto& w : in) w = rng.next_u64();
        std::vector<PackedWord> st(ref.dffs().size(), 0);
        EXPECT_EQ(sa.outputs_of(sa.eval(in, st)),
                  sb.outputs_of(sb.eval(in, st)))
            << ref.name();
    }
}

TEST(BenchIo, ForwardReferencesAndComments) {
    const char* text = "# comment\n"
                       "INPUT(a)\n"
                       "OUTPUT(y)\n"
                       "y = NOT(later)   # trailing comment\n"
                       "later = BUF(a)\n";
    const Netlist n = parse_bench(text);
    EXPECT_EQ(n.size(), 3u);
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
    try {
        (void)parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.pos().line, 3u);
    }
    EXPECT_THROW((void)parse_bench("INPUT a\n"), ParseError);
    EXPECT_THROW((void)parse_bench("x = FROB(a)\nINPUT(a)\nOUTPUT(x)\n"),
                 SemanticError);
}

// ---------------------------------------------------------------------------
// Logic simulation
// ---------------------------------------------------------------------------

TEST(LogicSimTest, C17TruthSpotChecks) {
    // c17: G22 = NAND(G10,G16), with G10=NAND(G1,G3), G11=NAND(G3,G6),
    // G16=NAND(G2,G11), G19=NAND(G11,G7), G23=NAND(G16,G19).
    const Netlist n = circuits::c17();
    const LogicSim sim(n);
    auto eval = [&](std::vector<bool> in) { return sim.eval_scalar(in); };
    // all zeros: G10=1,G11=1,G16=1,G19=1 → G22=NAND(1,1)=0, G23=0.
    EXPECT_EQ(eval({false, false, false, false, false}),
              (std::vector<bool>{false, false}));
    // all ones: G10=0,G11=0,G16=1,G19=1 → G22=1, G23=0.
    EXPECT_EQ(eval({true, true, true, true, true}),
              (std::vector<bool>{true, false}));
}

TEST(LogicSimTest, EveryGateTypeTruthTable) {
    Netlist n("all");
    const GateId a = n.add_input("a");
    const GateId b = n.add_input("b");
    n.mark_output(n.add_gate(GateType::And, "and", {a, b}));
    n.mark_output(n.add_gate(GateType::Nand, "nand", {a, b}));
    n.mark_output(n.add_gate(GateType::Or, "or", {a, b}));
    n.mark_output(n.add_gate(GateType::Nor, "nor", {a, b}));
    n.mark_output(n.add_gate(GateType::Xor, "xor", {a, b}));
    n.mark_output(n.add_gate(GateType::Xnor, "xnor", {a, b}));
    n.mark_output(n.add_gate(GateType::Not, "not", {a}));
    n.mark_output(n.add_gate(GateType::Buf, "buf", {a}));
    n.mark_output(n.add_gate(GateType::Const0, "c0", {}));
    n.mark_output(n.add_gate(GateType::Const1, "c1", {}));
    const LogicSim sim(n);
    for (int av = 0; av < 2; ++av) {
        for (int bv = 0; bv < 2; ++bv) {
            const bool A = av, B = bv;
            const auto out = sim.eval_scalar({A, B});
            const std::vector<bool> expect{
                A && B, !(A && B), A || B, !(A || B),
                A != B, A == B, !A, A, false, true};
            EXPECT_EQ(out, expect) << "a=" << A << " b=" << B;
        }
    }
}

TEST(LogicSimTest, AdderComputesArithmetic) {
    const Netlist n = circuits::ripple_adder(8);
    const LogicSim sim(n);
    Rng rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned a = static_cast<unsigned>(rng.next_below(256));
        const unsigned b = static_cast<unsigned>(rng.next_below(256));
        const bool cin = rng.next_bool();
        std::vector<bool> in;
        for (int i = 0; i < 8; ++i) in.push_back((a >> i) & 1);
        for (int i = 0; i < 8; ++i) in.push_back((b >> i) & 1);
        in.push_back(cin);
        const auto out = sim.eval_scalar(in);
        unsigned sum = 0;
        for (int i = 0; i < 8; ++i) sum |= (out[i] ? 1u : 0u) << i;
        const unsigned cout = out[8] ? 1u : 0u;
        EXPECT_EQ(sum + (cout << 8), a + b + (cin ? 1 : 0));
    }
}

TEST(LogicSimTest, ComparatorAgainstReference) {
    const Netlist n = circuits::comparator(6);
    const LogicSim sim(n);
    Rng rng(13);
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned a = static_cast<unsigned>(rng.next_below(64));
        const unsigned b = static_cast<unsigned>(rng.next_below(64));
        std::vector<bool> in;
        for (int i = 0; i < 6; ++i) in.push_back((a >> i) & 1);
        for (int i = 0; i < 6; ++i) in.push_back((b >> i) & 1);
        const auto out = sim.eval_scalar(in);
        EXPECT_EQ(out[0], a == b) << a << " vs " << b;
        EXPECT_EQ(out[1], a > b) << a << " vs " << b;
    }
}

TEST(LogicSimTest, MuxTreeSelectsRightInput) {
    const Netlist n = circuits::mux_tree(3); // 8:1
    const LogicSim sim(n);
    Rng rng(17);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<bool> data(8);
        for (auto&& d : data) d = rng.next_bool();
        const unsigned sel = static_cast<unsigned>(rng.next_below(8));
        std::vector<bool> in = data;
        for (int i = 0; i < 3; ++i) in.push_back((sel >> i) & 1);
        EXPECT_EQ(sim.eval_scalar(in)[0], data[sel]);
    }
}

TEST(LogicSimTest, ParityTreeMatchesPopcount) {
    const Netlist n = circuits::parity_tree(9);
    const LogicSim sim(n);
    Rng rng(19);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<bool> in(9);
        int ones = 0;
        for (auto&& v : in) {
            v = rng.next_bool();
            ones += v ? 1 : 0;
        }
        EXPECT_EQ(sim.eval_scalar(in)[0], ones % 2 == 1);
    }
}

TEST(LogicSimTest, AluOpcodesMatchReference) {
    const Netlist n = circuits::alu(4);
    const LogicSim sim(n);
    Rng rng(23);
    for (int trial = 0; trial < 200; ++trial) {
        const unsigned a = static_cast<unsigned>(rng.next_below(16));
        const unsigned b = static_cast<unsigned>(rng.next_below(16));
        const unsigned op = static_cast<unsigned>(rng.next_below(4));
        std::vector<bool> in{(op & 1) != 0, (op & 2) != 0, false};
        // inputs were added in order op0, op1, cin, then a_i/b_i per slice
        in.clear();
        in.push_back(op & 1);       // op0
        in.push_back((op >> 1) & 1); // op1
        in.push_back(false);        // cin
        for (int i = 0; i < 4; ++i) {
            in.push_back((a >> i) & 1);
            in.push_back((b >> i) & 1);
        }
        const auto out = sim.eval_scalar(in);
        unsigned y = 0;
        for (int i = 0; i < 4; ++i) y |= (out[i] ? 1u : 0u) << i;
        unsigned expect = 0;
        switch (op) {
        case 0: expect = a & b; break;
        case 1: expect = a | b; break;
        case 2: expect = a ^ b; break;
        case 3: expect = (a + b) & 0xF; break;
        }
        EXPECT_EQ(y, expect) << "op=" << op << " a=" << a << " b=" << b;
    }
}

TEST(LogicSimTest, CounterCountsFrames) {
    const Netlist n = circuits::counter(4);
    const LogicSim sim(n);
    std::vector<PackedWord> state(n.dffs().size(), 0);
    const std::vector<PackedWord> en{~PackedWord{0}};
    for (unsigned t = 1; t <= 20; ++t) {
        const auto values = sim.eval(en, state);
        state = sim.next_state(values);
        unsigned q = 0;
        // Evaluate with the new state to read q (lane 0).
        const auto v2 = sim.eval(en, state);
        for (std::size_t i = 0; i < 4; ++i)
            q |= static_cast<unsigned>(
                     v2[static_cast<std::size_t>(n.outputs()[i])] & 1u)
                 << i;
        EXPECT_EQ(q, t % 16) << "frame " << t;
    }
}

TEST(LogicSimTest, PackedLanesAreIndependent) {
    const Netlist n = circuits::parity_tree(8);
    const LogicSim sim(n);
    Rng rng(29);
    std::vector<PackedWord> in(8);
    for (auto& w : in) w = rng.next_u64();
    const auto out = sim.outputs_of(sim.eval(in));
    for (int lane = 0; lane < 64; ++lane) {
        std::vector<bool> scalar(8);
        for (int i = 0; i < 8; ++i) scalar[i] = (in[i] >> lane) & 1;
        EXPECT_EQ(((out[0] >> lane) & 1) != 0, sim.eval_scalar(scalar)[0])
            << "lane " << lane;
    }
}

// ---------------------------------------------------------------------------
// Fault universe
// ---------------------------------------------------------------------------

TEST(Faults, FullListCountsMatchStructure) {
    const Netlist n = circuits::c17();
    // 11 gates with 2 output faults each + 12 fanin pins × 2.
    std::size_t pins = 0;
    for (const auto& g : n.gates()) pins += g.fanins.size();
    EXPECT_EQ(full_fault_list(n).size(), 2 * n.size() + 2 * pins);
}

TEST(Faults, CollapseShrinksButKeepsOutputs) {
    const Netlist n = circuits::c17();
    const auto full = full_fault_list(n);
    const auto collapsed = collapse_faults(n);
    EXPECT_LT(collapsed.size(), full.size());
    // NAND: input sa0 collapses, input sa1 survives.
    for (const auto& f : collapsed)
        if (f.pin >= 0 && n.gate(f.gate).type == GateType::Nand) {
            EXPECT_TRUE(f.sa1) << to_string(n, f);
        }
}

TEST(Faults, ToStringNamesSites) {
    const Netlist n = circuits::c17();
    const Fault out_fault{n.require("G22"), -1, true};
    EXPECT_EQ(to_string(n, out_fault), "G22/out sa1");
    const Fault pin_fault{n.require("G22"), 1, false};
    EXPECT_EQ(to_string(n, pin_fault), "G22/in1 sa0");
}

// ---------------------------------------------------------------------------
// Fault simulation
// ---------------------------------------------------------------------------

std::vector<Pattern> exhaustive_patterns(std::size_t n_pi) {
    std::vector<Pattern> out;
    for (unsigned v = 0; v < (1u << n_pi); ++v) {
        std::vector<bool> frame(n_pi);
        for (std::size_t i = 0; i < n_pi; ++i) frame[i] = (v >> i) & 1;
        out.push_back(Pattern::single(std::move(frame)));
    }
    return out;
}

TEST(FaultSim, C17ExhaustiveDetectsAllCollapsedFaults) {
    const Netlist n = circuits::c17();
    const auto faults = collapse_faults(n);
    const auto result =
        fault_simulate_parallel(n, faults, exhaustive_patterns(5));
    // c17 has no redundant stuck-at faults.
    EXPECT_EQ(result.detected, result.total_faults);
    EXPECT_DOUBLE_EQ(result.coverage().value_or(0.0), 1.0);
}

TEST(FaultSim, StuckOutputFaultDetectedByObviousPattern) {
    // Single AND gate: output sa0 detected by a=b=1.
    Netlist n("and2");
    const GateId a = n.add_input("a");
    const GateId b = n.add_input("b");
    const GateId g = n.add_gate(GateType::And, "g", {a, b});
    n.mark_output(g);
    const std::vector<Fault> faults{{g, -1, false}};
    const std::vector<Pattern> good{Pattern::single({true, true})};
    const std::vector<Pattern> bad{Pattern::single({true, false})};
    EXPECT_EQ(fault_simulate_serial(n, faults, good).detected, 1u);
    EXPECT_EQ(fault_simulate_serial(n, faults, bad).detected, 0u);
}

TEST(FaultSim, InputPinFaultDistinctFromStemUnderFanout) {
    // y1 = AND(a,b), y2 = OR(a,c): fault on AND's a-pin must not require
    // the OR path, and the stem fault differs.
    Netlist n("fanout");
    const GateId a = n.add_input("a");
    const GateId b = n.add_input("b");
    const GateId c = n.add_input("c");
    const GateId y1 = n.add_gate(GateType::And, "y1", {a, b});
    const GateId y2 = n.add_gate(GateType::Or, "y2", {a, c});
    n.mark_output(y1);
    n.mark_output(y2);
    // Branch fault: AND input-a sa0. Pattern a=1,b=1,c=1: y1 good=1 bad=0
    // (detected); y2 unaffected by the branch fault.
    const std::vector<Fault> branch{{y1, 0, false}};
    const std::vector<Fault> stem{{a, -1, false}};
    const std::vector<Pattern> p{Pattern::single({true, true, true})};
    EXPECT_EQ(fault_simulate_serial(n, branch, p).detected, 1u);
    // The stem fault also flips y2? a sa0: y2 = OR(0,1)=1 = good → only y1
    // differs; both detected by this pattern anyway.
    EXPECT_EQ(fault_simulate_serial(n, stem, p).detected, 1u);
}

class SerialParallelEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SerialParallelEquivalence, SameDetectionSet) {
    const std::string which = GetParam();
    Netlist n = which == "c17"     ? circuits::c17()
                : which == "adder" ? circuits::ripple_adder(5)
                : which == "cmp"   ? circuits::comparator(4)
                : which == "mux"   ? circuits::mux_tree(2)
                : which == "alu"   ? circuits::alu(3)
                                   : circuits::parity_tree(7);
    const auto faults = collapse_faults(n);
    Rng rng(101);
    std::vector<Pattern> patterns;
    for (int p = 0; p < 100; ++p) {
        std::vector<bool> frame(n.inputs().size());
        for (auto&& v : frame) v = rng.next_bool();
        patterns.push_back(Pattern::single(std::move(frame)));
    }
    const auto serial = fault_simulate_serial(n, faults, patterns);
    const auto parallel = fault_simulate_parallel(n, faults, patterns);
    EXPECT_EQ(serial.detected, parallel.detected);
    EXPECT_EQ(serial.detected_mask, parallel.detected_mask);
}

INSTANTIATE_TEST_SUITE_P(Circuits, SerialParallelEquivalence,
                         ::testing::Values("c17", "adder", "cmp", "mux",
                                           "alu", "parity"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

TEST(FaultSim, SequentialCounterFaultsDetected) {
    const Netlist n = circuits::counter(3);
    const auto faults = collapse_faults(n);
    // Enable high for 10 frames: a counting circuit exposes most faults.
    Pattern p;
    for (int f = 0; f < 10; ++f) p.frames.push_back({true});
    const auto result = fault_simulate_parallel(n, faults, {p});
    EXPECT_GT(result.coverage().value_or(0.0), 0.5);
    // Serial agrees.
    const auto serial = fault_simulate_serial(n, faults, {p});
    EXPECT_EQ(serial.detected_mask, result.detected_mask);
}

// ---------------------------------------------------------------------------
// Random TPG
// ---------------------------------------------------------------------------

TEST(RandomTpg, ReachesFullCoverageOnC17) {
    const Netlist n = circuits::c17();
    const auto result = random_tpg(n, collapse_faults(n));
    EXPECT_DOUBLE_EQ(result.faultsim.coverage().value_or(0.0), 1.0);
    EXPECT_FALSE(result.curve.empty());
    // Curve is monotonically non-decreasing.
    for (std::size_t i = 1; i < result.curve.size(); ++i)
        EXPECT_GE(result.curve[i].coverage, result.curve[i - 1].coverage);
}

TEST(RandomTpg, RespectsPatternBudget) {
    const Netlist n = circuits::comparator(8);
    RandomTpgOptions opts;
    opts.max_patterns = 32;
    const auto result = random_tpg(n, collapse_faults(n), opts);
    EXPECT_LE(result.patterns.size(), 32u);
}

TEST(RandomTpg, DeterministicAcrossRuns) {
    const Netlist n = circuits::alu(2);
    const auto a = random_tpg(n, collapse_faults(n));
    const auto b = random_tpg(n, collapse_faults(n));
    EXPECT_EQ(a.faultsim.detected, b.faultsim.detected);
    EXPECT_EQ(a.patterns.size(), b.patterns.size());
}

// ---------------------------------------------------------------------------
// PODEM
// ---------------------------------------------------------------------------

TEST(Podem, GeneratesTestForEveryC17Fault) {
    const Netlist n = circuits::c17();
    for (const auto& f : collapse_faults(n)) {
        const auto r = podem(n, f);
        ASSERT_EQ(r.outcome, AtpgOutcome::Detected) << to_string(n, f);
        // Verify the pattern actually detects the fault.
        const auto check = fault_simulate_serial(n, {f}, {*r.pattern});
        EXPECT_EQ(check.detected, 1u) << to_string(n, f);
    }
}

TEST(Podem, ProvesRedundantFaultUntestable) {
    // y = OR(AND(a, b), AND(a, NOT(b))) simplifies to a; with an extra
    // OR(y, AND(b, NOT(b)))-style contradiction we get a classically
    // redundant site: AND(b, nb) output sa0 is undetectable because the
    // gate is constant 0.
    Netlist n("redundant");
    const GateId a = n.add_input("a");
    const GateId b = n.add_input("b");
    const GateId nb = n.add_gate(GateType::Not, "nb", {b});
    const GateId c0 = n.add_gate(GateType::And, "c0", {b, nb}); // always 0
    const GateId y = n.add_gate(GateType::Or, "y", {a, c0});
    n.mark_output(y);
    const auto r = podem(n, Fault{c0, -1, false});
    EXPECT_EQ(r.outcome, AtpgOutcome::Untestable);
    // And the sa1 fault on the same net IS testable (a=0 exposes it).
    const auto r1 = podem(n, Fault{c0, -1, true});
    EXPECT_EQ(r1.outcome, AtpgOutcome::Detected);
}

TEST(Podem, RejectsSequentialNetlists) {
    const Netlist n = circuits::counter(2);
    EXPECT_THROW((void)podem(n, Fault{0, -1, false}), SemanticError);
}

TEST(Podem, TopsUpRandomCoverage) {
    const Netlist n = circuits::mux_tree(3);
    const auto faults = collapse_faults(n);
    RandomTpgOptions opts;
    opts.max_patterns = 8; // deliberately leave coverage incomplete
    const auto random = random_tpg(n, faults, opts);
    std::vector<Fault> remaining;
    for (std::size_t i = 0; i < faults.size(); ++i)
        if (!random.faultsim.detected_mask[i]) remaining.push_back(faults[i]);
    if (remaining.empty()) GTEST_SKIP() << "random already complete";
    const auto atpg = run_atpg(n, remaining);
    EXPECT_EQ(atpg.aborted, 0u);
    EXPECT_EQ(atpg.detected + atpg.untestable, remaining.size());
    // Replaying the ATPG patterns detects everything testable.
    const auto replay = fault_simulate_parallel(n, remaining, atpg.patterns);
    EXPECT_EQ(replay.detected, atpg.detected);
}

TEST(Podem, FullAtpgOnAdderAchievesFullCoverage) {
    const Netlist n = circuits::ripple_adder(4);
    const auto faults = collapse_faults(n);
    const auto atpg = run_atpg(n, faults);
    EXPECT_EQ(atpg.aborted, 0u);
    EXPECT_EQ(atpg.untestable, 0u); // adders have no redundancy
    const auto replay = fault_simulate_parallel(n, faults, atpg.patterns);
    EXPECT_DOUBLE_EQ(replay.coverage().value_or(0.0), 1.0);
}

// ---------------------------------------------------------------------------
// GateDut adapter
// ---------------------------------------------------------------------------

TEST(GateDutTest, DrivesCombinationalPins) {
    GateDut d(circuits::c17());
    d.set_supply(12.0);
    for (const char* pin : {"G1", "G2", "G3", "G6", "G7"})
        d.set_pin_voltage(pin, 12.0);
    d.step(0.05);
    EXPECT_DOUBLE_EQ(d.pin_voltage("G22"), 12.0); // all-ones → G22=1
    EXPECT_DOUBLE_EQ(d.pin_voltage("G23"), 0.0);
    EXPECT_DOUBLE_EQ(d.pin_voltage("unknown"), 0.0);
}

TEST(GateDutTest, RecordsStimulusTrace) {
    GateDut d(circuits::c17());
    d.set_supply(12.0);
    d.set_pin_voltage("G1", 12.0);
    d.step(0.05);
    d.set_pin_voltage("G2", 12.0);
    d.step(0.05);
    d.step(0.05); // unchanged: no new frame
    EXPECT_EQ(d.recorded_pattern().frames.size(), 2u);
}

TEST(GateDutTest, InjectedFaultChangesBehaviour) {
    GateDut::Config cfg;
    cfg.fault = std::make_unique<Fault>(
        Fault{circuits::c17().require("G22"), -1, false});
    GateDut faulty(circuits::c17(), std::move(cfg));
    faulty.set_supply(12.0);
    for (const char* pin : {"G1", "G2", "G3", "G6", "G7"})
        faulty.set_pin_voltage(pin, 12.0);
    faulty.step(0.05);
    EXPECT_DOUBLE_EQ(faulty.pin_voltage("G22"), 0.0); // stuck at 0
}

TEST(GateDutTest, SequentialClockAdvancesState) {
    GateDut d(circuits::counter(3), GateDut::Config{0.01, nullptr});
    d.set_supply(12.0);
    d.set_pin_voltage("en", 12.0);
    d.step(0.055); // 5 clock edges
    unsigned q = 0;
    for (int i = 0; i < 3; ++i)
        if (d.pin_voltage(("q" + std::to_string(i)).c_str()) > 6.0)
            q |= 1u << i;
    EXPECT_EQ(q, 5u);
}

} // namespace
} // namespace ctk::gate
