// Unit + integration tests: the ctkd campaign daemon (src/service).
//
// Three layers under test:
//   * proto: encode/decode round-trips, and every malformed-payload
//     shape produces a named ProtoError (never a crash, never a
//     half-parse);
//   * the live server: handshake, streamed grading replies that rebuild
//     byte-identical coverage output, the plan-cache hit on a repeat
//     request, concurrent clients, admission control;
//   * robustness: truncated frames, oversized length prefixes,
//     mid-stream client disconnects and requests after shutdown all
//     yield named errors while the daemon keeps serving.
//
// Every server test binds its own socket under a fresh temp directory,
// so tests are independent and parallel-safe.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/gradestore.hpp"
#include "core/grading.hpp"
#include "core/kb.hpp"
#include "gate/circuits.hpp"
#include "gate/grade.hpp"
#include "report/report.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace ctk::service {
namespace {

// -- protocol unit tests ---------------------------------------------------

TEST(ServiceProto, FrameEncodingRoundTrip) {
    const std::string frame = encode_frame(FrameType::Hello, "abc");
    ASSERT_EQ(frame.size(), 8u);
    EXPECT_EQ(static_cast<unsigned char>(frame[0]), 3u); // le32 length
    EXPECT_EQ(static_cast<unsigned char>(frame[4]),
              static_cast<unsigned char>(FrameType::Hello));
    EXPECT_EQ(frame.substr(5), "abc");
}

TEST(ServiceProto, OversizedPayloadRefusesToEncode) {
    EXPECT_THROW(encode_frame(FrameType::Verdict,
                              std::string(kMaxFramePayload + 1, 'x')),
                 ProtoError);
}

TEST(ServiceProto, HelloRoundTripAndVersion) {
    const HelloMsg msg = decode_hello(encode(HelloMsg{}));
    EXPECT_EQ(msg.version, kProtocolVersion);
}

TEST(ServiceProto, GradeRequestRoundTrip) {
    GradeRequestMsg msg;
    msg.families = {"interior_light", "wiper"};
    msg.universe = 1;
    msg.jobs = 7;
    msg.lockstep = 1;
    msg.block = 64;
    const GradeRequestMsg back = decode_grade_request(encode(msg));
    EXPECT_EQ(back.families, msg.families);
    EXPECT_EQ(back.universe, 1);
    EXPECT_EQ(back.jobs, 7u);
    EXPECT_EQ(back.lockstep, 1);
    EXPECT_EQ(back.block, 64u);
    // v2 defaults survive the trip untouched.
    EXPECT_EQ(back.mode, static_cast<std::uint8_t>(GradeMode::Kb));
    EXPECT_TRUE(back.netlist_name.empty());
    EXPECT_TRUE(back.netlist_text.empty());
    EXPECT_EQ(back.patterns, 256u);
    EXPECT_EQ(back.fault_packed, 0);
}

TEST(ServiceProto, GateRequestRoundTrip) {
    GradeRequestMsg msg;
    msg.mode = static_cast<std::uint8_t>(GradeMode::Gate);
    msg.netlist_name = "builtin:c17";
    msg.netlist_text = "INPUT(a)\n";
    msg.patterns = 128;
    msg.fault_packed = 1;
    msg.jobs = 3;
    const GradeRequestMsg back = decode_grade_request(encode(msg));
    EXPECT_EQ(back.mode, static_cast<std::uint8_t>(GradeMode::Gate));
    EXPECT_EQ(back.netlist_name, "builtin:c17");
    EXPECT_EQ(back.netlist_text, "INPUT(a)\n");
    EXPECT_EQ(back.patterns, 128u);
    EXPECT_EQ(back.fault_packed, 1);
    EXPECT_EQ(back.jobs, 3u);
}

TEST(ServiceProto, DoneGateSummaryRoundTrip) {
    DoneMsg msg;
    msg.gate_random_patterns = 64;
    msg.gate_random_detected = 21;
    msg.gate_atpg_ran = 1;
    msg.gate_atpg_detected = 5;
    msg.gate_atpg_untestable = 2;
    msg.gate_atpg_aborted = 1;
    const DoneMsg back = decode_done(encode(msg));
    EXPECT_EQ(back.gate_random_patterns, 64u);
    EXPECT_EQ(back.gate_random_detected, 21u);
    EXPECT_EQ(back.gate_atpg_ran, 1);
    EXPECT_EQ(back.gate_atpg_detected, 5u);
    EXPECT_EQ(back.gate_atpg_untestable, 2u);
    EXPECT_EQ(back.gate_atpg_aborted, 1u);
}

TEST(ServiceProto, VerdictRoundTripPreservesEntry) {
    VerdictMsg msg;
    msg.family_index = 2;
    msg.fault_index = 41;
    msg.entry.id = "stuck_low@pin_k15";
    msg.entry.kind = "stuck_low";
    msg.entry.outcome = core::FaultOutcome::Detected;
    msg.entry.detected_at = "lights_on/3/il";
    msg.entry.flipped_checks = 5;
    const VerdictMsg back = decode_verdict(encode(msg));
    EXPECT_EQ(back.family_index, 2u);
    EXPECT_EQ(back.fault_index, 41u);
    EXPECT_EQ(back.entry.id, msg.entry.id);
    EXPECT_EQ(back.entry.outcome, core::FaultOutcome::Detected);
    EXPECT_EQ(back.entry.detected_at, msg.entry.detected_at);
    EXPECT_EQ(back.entry.flipped_checks, 5u);
    EXPECT_FALSE(back.entry.detected_by.has_value());
}

TEST(ServiceProto, DoneRoundTripPreservesStats) {
    DoneMsg msg;
    msg.workers = 8;
    msg.wall_s = 1.25;
    msg.cache_hit = 1;
    msg.kb_hash = "abcd";
    msg.stand_hash = "ef01";
    msg.store.pair_hits = 100;
    msg.store.faults_skipped = 12;
    msg.lockstep_lanes = 3;
    const DoneMsg back = decode_done(encode(msg));
    EXPECT_EQ(back.workers, 8u);
    EXPECT_DOUBLE_EQ(back.wall_s, 1.25);
    EXPECT_EQ(back.cache_hit, 1);
    EXPECT_EQ(back.kb_hash, "abcd");
    EXPECT_EQ(back.store.pair_hits, 100u);
    EXPECT_EQ(back.store.faults_skipped, 12u);
    EXPECT_EQ(back.lockstep_lanes, 3u);
}

TEST(ServiceProto, TruncatedPayloadNamesTheField) {
    const std::string good = encode(GradeRequestMsg{{"wiper"}, 0, 2, 0, 0});
    try {
        (void)decode_grade_request(good.substr(0, good.size() - 3));
        FAIL() << "truncated payload must throw";
    } catch (const ProtoError& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
}

TEST(ServiceProto, TrailingGarbageIsRejected) {
    EXPECT_THROW((void)decode_hello(encode(HelloMsg{}) + "x"), ProtoError);
    EXPECT_THROW((void)decode_progress(encode(ProgressMsg{1, 2}) + "zz"),
                 ProtoError);
}

TEST(ServiceProto, LyingFamilyCountIsRejected) {
    // family_count = 0xffffffff with a tiny payload: the count cannot
    // fit, and must be rejected before any element loop runs.
    Writer w;
    w.u32(0xffffffffu);
    EXPECT_THROW((void)decode_grade_request(w.take()), ProtoError);
}

TEST(ServiceProto, BadEnumValuesAreRejected) {
    GradeRequestMsg req;
    req.families = {"wiper"};
    std::string bytes = encode(req);
    // universe byte sits right after the family list.
    bytes[4 + 4 + 5] = 7;
    EXPECT_THROW((void)decode_grade_request(bytes), ProtoError);

    VerdictMsg v;
    v.entry.outcome = core::FaultOutcome::FrameworkError;
    std::string vb = encode(v);
    const std::size_t outcome_at = 4 + 8 + 4 + 4; // fi, idx, id"", kind""
    ASSERT_EQ(static_cast<unsigned char>(vb[outcome_at]),
              static_cast<unsigned char>(core::FaultOutcome::FrameworkError));
    vb[outcome_at] = 9;
    EXPECT_THROW((void)decode_verdict(vb), ProtoError);

    // mode byte: only Kb (0) and Gate (1) exist.
    GradeRequestMsg gm;
    gm.mode = 5;
    EXPECT_THROW((void)decode_grade_request(encode(gm)), ProtoError);
}

// -- live server fixtures --------------------------------------------------

/// Fresh socket path + server per test. Small KB family keeps each
/// grading fast; jobs are clamped server-side for determinism.
class ServiceTest : public ::testing::Test {
protected:
    void SetUp() override {
        // PID in the path: ctest -j runs sibling tests of this binary
        // in separate processes, and the socket path must not collide.
        dir_ = std::filesystem::temp_directory_path() /
               ("ctk_service_" + std::to_string(::getpid()) + "_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        std::filesystem::create_directories(dir_);
        options_.socket_path = (dir_ / "ctkd.sock").string();
        options_.io_stall_ms = 2'000;
    }

    void TearDown() override {
        if (server_) server_->stop();
        server_.reset();
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    void start() {
        server_ = std::make_unique<CtkdServer>(options_);
        server_->start();
    }

    static GradeRequestMsg small_request(unsigned jobs = 1) {
        GradeRequestMsg request;
        request.families = {"interior_light"};
        request.jobs = jobs;
        return request;
    }

    std::filesystem::path dir_;
    ServerOptions options_;
    std::unique_ptr<CtkdServer> server_;
};

/// Offline reference grading of the same request shape.
core::GradingResult offline(const std::vector<std::string>& families,
                            unsigned jobs = 1) {
    core::GradingOptions opts;
    opts.jobs = jobs;
    return core::grade_kb(opts, families);
}

// -- streamed replies ------------------------------------------------------

TEST_F(ServiceTest, StreamedReplyMatchesOfflineByteForByte) {
    start();
    DaemonClient client(options_.socket_path);
    const GradeReply reply = client.grade(small_request());

    const core::CoverageMatrix offline_matrix =
        offline({"interior_light"}).to_coverage();
    EXPECT_EQ(core::coverage_fingerprint(reply.matrix),
              core::coverage_fingerprint(offline_matrix));
    // CSV has no timing column: full byte identity.
    EXPECT_EQ(report::coverage_to_csv(reply.matrix),
              report::coverage_to_csv(offline_matrix));
    // stdout identity modulo the wall clock: force equal walls, then
    // the rendered tables must match byte for byte (same workers = 1).
    core::CoverageMatrix a = reply.matrix;
    core::CoverageMatrix b = offline_matrix;
    a.wall_s = b.wall_s = 0.0;
    EXPECT_EQ(report::render_coverage(a, true),
              report::render_coverage(b, true));
}

TEST_F(ServiceTest, SecondIdenticalRequestHitsThePlanCache) {
    start();
    DaemonClient client(options_.socket_path);
    const GradeReply first = client.grade(small_request());
    EXPECT_EQ(first.done.cache_hit, 0);
    const GradeReply second = client.grade(small_request());
    EXPECT_EQ(second.done.cache_hit, 1);
    EXPECT_EQ(second.done.kb_hash, first.done.kb_hash);
    EXPECT_EQ(second.done.stand_hash, first.done.stand_hash);
    // The warm repeat is served from the shared store: every pair hit,
    // every fault skipped, and the verdicts still byte-identical.
    EXPECT_EQ(second.done.store.pair_misses, 0u);
    EXPECT_EQ(second.done.store.faults_replayed, 0u);
    EXPECT_GT(second.done.store.pair_hits, 0u);
    EXPECT_EQ(core::coverage_fingerprint(second.matrix),
              core::coverage_fingerprint(first.matrix));
    EXPECT_EQ(server_->stats().cache_hits.load(), 1u);
    EXPECT_EQ(server_->stats().cache_misses.load(), 1u);
}

TEST_F(ServiceTest, ProgressTicksArriveMonotonically) {
    start();
    DaemonClient client(options_.socket_path);
    std::vector<ProgressMsg> ticks;
    const GradeReply reply =
        client.grade(small_request(), [&](const ProgressMsg& p) {
            ticks.push_back(p);
        });
    ASSERT_FALSE(ticks.empty());
    for (std::size_t i = 1; i < ticks.size(); ++i)
        EXPECT_LE(ticks[i - 1].done, ticks[i].done);
    EXPECT_EQ(ticks.back().done, ticks.back().total);
    EXPECT_EQ(ticks.back().total, reply.matrix.fault_count());
}

TEST_F(ServiceTest, ConcurrentClientsAllGetIdenticalVerdicts) {
    options_.max_sessions = 4;
    start();
    const std::string expected = core::coverage_fingerprint(
        offline({"interior_light"}).to_coverage());
    std::atomic<int> ok{0};
    std::vector<std::thread> clients;
    clients.reserve(4);
    for (int i = 0; i < 4; ++i) {
        clients.emplace_back([&] {
            DaemonClient client(options_.socket_path);
            const GradeReply reply = client.grade(small_request());
            if (core::coverage_fingerprint(reply.matrix) == expected)
                ok.fetch_add(1);
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(ok.load(), 4);
    EXPECT_EQ(server_->stats().requests.load(), 4u);
}

TEST_F(ServiceTest, UnknownFamilyIsABadRequestNotACrash) {
    start();
    DaemonClient client(options_.socket_path);
    GradeRequestMsg request;
    request.families = {"no_such_family"};
    request.jobs = 1;
    try {
        (void)client.grade(request);
        FAIL() << "unknown family must produce a daemon error";
    } catch (const DaemonError& e) {
        EXPECT_EQ(e.code(), "bad-request");
    }
    // The connection and the daemon both survive the refused request.
    const GradeReply reply = client.grade(small_request());
    EXPECT_GT(reply.matrix.fault_count(), 0u);
}

TEST_F(ServiceTest, JobsAreClampedToTheRequestBudget) {
    options_.max_request_jobs = 2;
    start();
    DaemonClient client(options_.socket_path);
    const GradeReply reply = client.grade(small_request(/*jobs=*/64));
    EXPECT_LE(reply.done.workers, 2u);
}

// -- robustness: malformed traffic never crashes or wedges -----------------

TEST_F(ServiceTest, NonHelloFirstFrameIsABadFrame) {
    start();
    Socket raw = connect_local(options_.socket_path);
    write_frame(raw, FrameType::GradeRequest,
                encode(small_request()));
    const auto reply = read_frame(raw, 2'000, CancelFn());
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, FrameType::Error);
    EXPECT_EQ(decode_error(reply->payload).code, "bad-frame");
}

TEST_F(ServiceTest, VersionMismatchIsNamed) {
    start();
    Socket raw = connect_local(options_.socket_path);
    HelloMsg hello;
    hello.version = 999;
    write_frame(raw, FrameType::Hello, encode(hello));
    const auto reply = read_frame(raw, 2'000, CancelFn());
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, FrameType::Error);
    EXPECT_EQ(decode_error(reply->payload).code, "bad-version");
}

TEST_F(ServiceTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
    start();
    Socket raw = connect_local(options_.socket_path);
    // 0xffffffff length prefix + Hello type: far beyond the ceiling.
    raw.send_all(std::string("\xff\xff\xff\xff\x01", 5));
    const auto reply = read_frame(raw, 2'000, CancelFn());
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, FrameType::Error);
    EXPECT_EQ(decode_error(reply->payload).code, "bad-frame");
}

TEST_F(ServiceTest, MalformedHelloPayloadIsABadFrame) {
    start();
    Socket raw = connect_local(options_.socket_path);
    write_frame(raw, FrameType::Hello, "zz"); // 2 bytes, not a u32
    const auto reply = read_frame(raw, 2'000, CancelFn());
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, FrameType::Error);
    EXPECT_EQ(decode_error(reply->payload).code, "bad-frame");
}

TEST_F(ServiceTest, TruncatedFrameThenDisconnectDoesNotWedgeTheDaemon) {
    options_.io_stall_ms = 300;
    start();
    {
        Socket raw = connect_local(options_.socket_path);
        // A frame header promising 100 bytes, then silence + close.
        raw.send_all(std::string("\x64\x00\x00\x00\x01", 5));
    } // destructor closes mid-frame
    // The session slot must come back: a well-behaved client succeeds.
    DaemonClient client(options_.socket_path);
    const GradeReply reply = client.grade(small_request());
    EXPECT_GT(reply.matrix.fault_count(), 0u);
    EXPECT_GE(server_->stats().protocol_errors.load(), 1u);
}

TEST_F(ServiceTest, MidFrameStallIsCutLooseByTheStallTimeout) {
    options_.io_stall_ms = 300;
    options_.max_sessions = 1;
    start();
    Socket staller = connect_local(options_.socket_path);
    staller.send_all(std::string("\x64\x00\x00\x00\x01", 5));
    // The single session is stuck reading the promised 100 bytes; the
    // stall timeout must free it for the next client.
    DaemonClient client(options_.socket_path);
    const GradeReply reply = client.grade(small_request());
    EXPECT_GT(reply.matrix.fault_count(), 0u);
}

TEST_F(ServiceTest, MidStreamClientDisconnectStillWarmsTheStore) {
    start();
    {
        // Speak the protocol by hand so we can hang up mid-reply: send
        // the request, read one frame, vanish.
        Socket raw = connect_local(options_.socket_path);
        write_frame(raw, FrameType::Hello, encode(HelloMsg{}));
        auto hello_ok = read_frame(raw, 2'000, CancelFn());
        ASSERT_TRUE(hello_ok && hello_ok->type == FrameType::HelloOk);
        write_frame(raw, FrameType::GradeRequest, encode(small_request()));
        auto first = read_frame(raw, 10'000, CancelFn());
        ASSERT_TRUE(first.has_value());
    } // close with the rest of the stream unread
    // The grading completed daemon-side and warmed the entry: the next
    // client's identical request is a cache hit served from the store.
    DaemonClient client(options_.socket_path);
    // The abandoned grading may still be finishing; the entry gate
    // serializes us behind it.
    const GradeReply reply = client.grade(small_request());
    EXPECT_EQ(reply.done.cache_hit, 1);
    EXPECT_EQ(reply.done.store.faults_replayed, 0u);
    EXPECT_GT(reply.done.store.pair_hits, 0u);
}

TEST_F(ServiceTest, BusyQueueRejectsWithNamedError) {
    options_.max_sessions = 1;
    options_.backlog = 1;
    start();
    // Occupy the only session with an idle (but connected) client, and
    // the only backlog slot with a second one.
    DaemonClient occupant(options_.socket_path); // handshook = being served
    Socket waiting = connect_local(options_.socket_path);
    // Give the accept thread a moment to queue `waiting`.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    Socket overflow = connect_local(options_.socket_path);
    const auto reply = read_frame(overflow, 5'000, CancelFn());
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, FrameType::Error);
    EXPECT_EQ(decode_error(reply->payload).code, "busy");
    EXPECT_GE(server_->stats().busy_rejected.load(), 1u);
}

TEST_F(ServiceTest, RequestAfterShutdownIsANamedError) {
    options_.max_sessions = 2;
    start();
    DaemonClient survivor(options_.socket_path);
    {
        DaemonClient stopper(options_.socket_path);
        stopper.shutdown();
    }
    EXPECT_TRUE(server_->stopping());
    // The still-open connection's next request must be answered with a
    // named shutdown error (or at worst a closed connection) — it must
    // not wedge waiting forever.
    try {
        (void)survivor.grade(small_request());
        FAIL() << "request after shutdown must not succeed";
    } catch (const DaemonError& e) {
        EXPECT_EQ(e.code(), "shutdown");
    } catch (const ProtoError&) {
        // Connection already torn down — acceptable, still no wedge.
    }
    server_->stop(); // join everything; TearDown would too
}

// -- canonical cache keys --------------------------------------------------

TEST_F(ServiceTest, CanonicalKeysCollapseOrderingsAndDuplicates) {
    start();
    DaemonClient client(options_.socket_path);
    GradeRequestMsg a;
    a.families = {"wiper", "interior_light"};
    a.jobs = 1;
    GradeRequestMsg b;
    b.families = {"interior_light", "wiper", "wiper"};
    b.jobs = 1;
    const GradeReply first = client.grade(a);
    EXPECT_EQ(first.done.cache_hit, 0);
    const GradeReply second = client.grade(b);
    // Different spelling, same canonical set: one entry, warm hit.
    EXPECT_EQ(second.done.cache_hit, 1);
    EXPECT_EQ(second.done.kb_hash, first.done.kb_hash);
    EXPECT_EQ(second.done.stand_hash, first.done.stand_hash);
    EXPECT_EQ(server_->cache().entry_count(), 1u);
    EXPECT_EQ(core::coverage_fingerprint(second.matrix),
              core::coverage_fingerprint(first.matrix));
    // Reply order is the KB catalogue order, not the request order.
    ASSERT_EQ(first.matrix.groups.size(), 2u);
    EXPECT_EQ(first.matrix.groups[0].name, "interior_light");
    EXPECT_EQ(first.matrix.groups[1].name, "wiper");
}

TEST_F(ServiceTest, ExplicitFullListMatchesTheDefaultEntry) {
    start();
    DaemonClient client(options_.socket_path);
    GradeRequestMsg all;
    all.jobs = 1; // empty family list = the whole knowledge base
    const GradeReply first = client.grade(all);
    GradeRequestMsg spelled_out;
    spelled_out.jobs = 1;
    spelled_out.families = core::kb::families();
    std::reverse(spelled_out.families.begin(), spelled_out.families.end());
    const GradeReply second = client.grade(spelled_out);
    EXPECT_EQ(second.done.cache_hit, 1);
    EXPECT_EQ(server_->cache().entry_count(), 1u);
    EXPECT_EQ(core::coverage_fingerprint(second.matrix),
              core::coverage_fingerprint(first.matrix));
}

// -- sharded same-entry grading and the shared store -----------------------

TEST_F(ServiceTest, ConcurrentIdenticalClientsProduceByteIdenticalCsvs) {
    options_.max_sessions = 4;
    start();
    // Offline reference, with a store so the pair universe is known.
    core::GradingOptions ref_opts;
    ref_opts.jobs = 1;
    core::GradeStore ref_store;
    ref_opts.store = &ref_store;
    const std::string expected = report::coverage_to_csv(
        core::grade_kb(ref_opts, {"interior_light"}).to_coverage());

    std::array<std::string, 4> csvs;
    std::vector<std::thread> clients;
    clients.reserve(csvs.size());
    for (std::size_t i = 0; i < csvs.size(); ++i) {
        clients.emplace_back([&, i] {
            DaemonClient client(options_.socket_path);
            csvs[i] = report::coverage_to_csv(
                client.grade(small_request()).matrix);
        });
    }
    for (auto& t : clients) t.join();
    for (const auto& csv : csvs) EXPECT_EQ(csv, expected);

    // One writer per (fault, test) pair: the shared store the shard
    // round merged holds exactly the offline pair set — nothing
    // doubled, nothing dropped.
    const auto mounted = server_->cache().mount({"interior_light"}, false);
    EXPECT_TRUE(mounted.hit);
    std::lock_guard<std::mutex> gate(mounted.entry->gate);
    EXPECT_EQ(mounted.entry->store.pair_count(), ref_store.pair_count());
}

// -- bounded caches --------------------------------------------------------

TEST_F(ServiceTest, EvictionPersistsThenReloadsTheStoreIntact) {
    options_.store_root = (dir_ / "stores").string();
    options_.max_entries = 1;
    start();
    DaemonClient client(options_.socket_path);
    GradeRequestMsg wiper;
    wiper.families = {"wiper"};
    wiper.jobs = 1;

    const GradeReply cold = client.grade(small_request());
    EXPECT_GT(cold.done.store.pair_misses, 0u);
    (void)client.grade(wiper); // bound is 1 entry: evicts the first
    EXPECT_EQ(server_->cache().entry_count(), 1u);
    const auto evictions = server_->cache().eviction_stats();
    EXPECT_GE(evictions.entries_evicted, 1u);
    EXPECT_GE(evictions.stores_persisted, 1u);

    // Re-mount the evicted shape: a plan-cache miss (the entry is
    // gone), but the persisted store serves every pair — eviction
    // costs a reload, never a regrade.
    const GradeReply back = client.grade(small_request());
    EXPECT_EQ(back.done.cache_hit, 0);
    EXPECT_EQ(back.done.store.pair_misses, 0u);
    EXPECT_GT(back.done.store.pair_hits, 0u);
    EXPECT_EQ(core::coverage_fingerprint(back.matrix),
              core::coverage_fingerprint(cold.matrix));
}

// -- init latch: slow loads stall only their own entry ---------------------

TEST_F(ServiceTest, SlowEntryLoadDoesNotBlockOtherEntries) {
    options_.max_sessions = 2;
    start();
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool hold = true;
    bool first_load = true;
    // The first entry to init blocks in its load until released; every
    // other entry loads normally.
    server_->cache().set_load_hook_for_test([&](const std::string&) {
        std::unique_lock<std::mutex> lk(m);
        if (!first_load) return;
        first_load = false;
        entered = true;
        cv.notify_all();
        cv.wait(lk, [&] { return !hold; });
    });

    std::thread stalled([&] {
        DaemonClient client(options_.socket_path);
        (void)client.grade(small_request());
    });
    {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return entered; });
    }
    // interior_light's load is wedged; a DIFFERENT entry must mount and
    // grade to completion regardless — the init latch is per-entry, not
    // cache-wide. A deadlock here hangs (and fails) the test.
    {
        DaemonClient client(options_.socket_path);
        GradeRequestMsg wiper;
        wiper.families = {"wiper"};
        wiper.jobs = 1;
        const GradeReply reply = client.grade(wiper);
        EXPECT_GT(reply.matrix.fault_count(), 0u);
    }
    {
        std::lock_guard<std::mutex> lk(m);
        hold = false;
    }
    cv.notify_all();
    stalled.join();
}

// -- idempotent stop -------------------------------------------------------

TEST_F(ServiceTest, StopIsIdempotentUnderConcurrentCallers) {
    start();
    {
        DaemonClient client(options_.socket_path);
        (void)client.grade(small_request());
    }
    // Signal handler, destructor and explicit caller may all race into
    // stop(); exactly one joins, the rest wait — never a double join.
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i)
        stoppers.emplace_back([&] { server_->stop(); });
    for (auto& t : stoppers) t.join();
    server_->stop(); // and once more, serially
    EXPECT_TRUE(server_->stopping());
}

// -- gate mode over the daemon ---------------------------------------------

TEST_F(ServiceTest, GateRequestOverTheDaemonMatchesOffline) {
    start();
    gate::GateGradeOptions gopts;
    gopts.max_patterns = 64;
    gopts.jobs = 1;
    const auto offline_gate =
        gate::grade_netlist(gate::circuits::c17(), gopts);
    core::CoverageMatrix reference;
    reference.groups.push_back(offline_gate.coverage);

    DaemonClient client(options_.socket_path);
    GradeRequestMsg request;
    request.mode = static_cast<std::uint8_t>(GradeMode::Gate);
    request.netlist_name = "builtin:c17";
    request.patterns = 64;
    request.jobs = 1;
    const GradeReply reply = client.grade(request);
    EXPECT_EQ(report::coverage_to_csv(reply.matrix),
              report::coverage_to_csv(reference));
    EXPECT_EQ(reply.done.gate_random_patterns, offline_gate.random_patterns);
    EXPECT_EQ(reply.done.gate_random_detected, offline_gate.random_detected);

    // An unknown builtin is a bad request, not a dead daemon.
    GradeRequestMsg bad;
    bad.mode = static_cast<std::uint8_t>(GradeMode::Gate);
    bad.netlist_name = "builtin:no_such_circuit";
    try {
        (void)client.grade(bad);
        FAIL() << "unknown builtin must produce a daemon error";
    } catch (const DaemonError& e) {
        EXPECT_EQ(e.code(), "bad-request");
    }
    // The connection still serves the next request.
    const GradeReply again = client.grade(request);
    EXPECT_EQ(report::coverage_to_csv(again.matrix),
              report::coverage_to_csv(reference));
}

TEST_F(ServiceTest, StorePersistsAcrossDaemonRestarts) {
    options_.store_root = (dir_ / "stores").string();
    start();
    {
        DaemonClient client(options_.socket_path);
        const GradeReply first = client.grade(small_request());
        EXPECT_GT(first.done.store.pair_misses, 0u); // cold store
    }
    server_->stop();
    server_ = std::make_unique<CtkdServer>(options_);
    server_->start();
    {
        DaemonClient client(options_.socket_path);
        const GradeReply warm = client.grade(small_request());
        // Fresh process = plan-cache miss, but the persisted store
        // serves every pair.
        EXPECT_EQ(warm.done.cache_hit, 0);
        EXPECT_EQ(warm.done.store.pair_misses, 0u);
        EXPECT_GT(warm.done.store.pair_hits, 0u);
    }
}

} // namespace
} // namespace ctk::service
