// Unit tests: common utilities (strings, numbers, table renderer, rng).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace ctk {
namespace {

using str::parse_number;

TEST(Strings, TrimRemovesSurroundingWhitespace) {
    EXPECT_EQ(str::trim("  abc  "), "abc");
    EXPECT_EQ(str::trim("\t a b \n"), "a b");
    EXPECT_EQ(str::trim(""), "");
    EXPECT_EQ(str::trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
    const auto parts = str::split("a;;b;", ';');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, CaseConversionAndIequals) {
    EXPECT_EQ(str::lower("AbC"), "abc");
    EXPECT_EQ(str::upper("aBc"), "ABC");
    EXPECT_TRUE(str::iequals("UBATT", "ubatt"));
    EXPECT_FALSE(str::iequals("UBATT", "ubat"));
    EXPECT_FALSE(str::iequals("a", "ab"));
}

struct NumberCase {
    const char* text;
    double expected;
};

class ParseNumberValid : public ::testing::TestWithParam<NumberCase> {};

TEST_P(ParseNumberValid, ParsesTo) {
    const auto& [text, expected] = GetParam();
    const auto v = parse_number(text);
    ASSERT_TRUE(v.has_value()) << text;
    if (std::isinf(expected))
        EXPECT_EQ(*v, expected);
    else
        EXPECT_DOUBLE_EQ(*v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    DecimalFormats, ParseNumberValid,
    ::testing::Values(NumberCase{"0,5", 0.5},        // German comma
                      NumberCase{"0.5", 0.5},        // point
                      NumberCase{"280", 280.0},      //
                      NumberCase{"-60", -60.0},      //
                      NumberCase{"1,00E+06", 1e6},   // Excel scientific
                      NumberCase{"2,00E+05", 2e5},   //
                      NumberCase{"1e-3", 1e-3},      //
                      NumberCase{" 25 ", 25.0},      // padded
                      NumberCase{"INF", std::numeric_limits<double>::infinity()},
                      NumberCase{"-INF", -std::numeric_limits<double>::infinity()},
                      NumberCase{"inf", std::numeric_limits<double>::infinity()},
                      NumberCase{"+5", 5.0}));

class ParseNumberInvalid : public ::testing::TestWithParam<const char*> {};

TEST_P(ParseNumberInvalid, Rejects) {
    EXPECT_FALSE(parse_number(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(BadInputs, ParseNumberInvalid,
                         ::testing::Values("", "abc", "1,2,3", "0001B",
                                           "Open", "12 34", "--5", "1.2.3"));

TEST(FormatNumber, CompactForms) {
    EXPECT_EQ(str::format_number(280.0), "280");
    EXPECT_EQ(str::format_number(0.5), "0.5");
    EXPECT_EQ(str::format_number(std::numeric_limits<double>::infinity()),
              "INF");
    EXPECT_EQ(str::format_number(-std::numeric_limits<double>::infinity()),
              "-INF");
    EXPECT_EQ(str::format_number(-60.0), "-60");
}

TEST(FormatNumber, RoundTripsThroughParse) {
    for (double v : {0.5, 280.0, 1e6, -60.0, 0.3, 1.1, 0.7, 13.5}) {
        const auto back = parse_number(str::format_number(v, 12));
        ASSERT_TRUE(back.has_value());
        EXPECT_DOUBLE_EQ(*back, v);
    }
}

TEST(SourcePos, FormatsFileLineColumn) {
    EXPECT_EQ((SourcePos{"a.csv", 3, 7}).to_string(), "a.csv:3:7");
    EXPECT_EQ((SourcePos{"a.csv", 3, 0}).to_string(), "a.csv:3");
    EXPECT_EQ((SourcePos{"", 0, 0}).to_string(), "<unknown>");
}

TEST(ParseErrorTest, CarriesPosition) {
    const ParseError e(SourcePos{"x.xml", 2, 5}, "boom");
    EXPECT_EQ(e.pos().line, 2u);
    EXPECT_STREQ(e.what(), "x.xml:2:5: boom");
}

TEST(TextTable, RendersAlignedColumns) {
    TextTable t;
    t.header({"a", "long"});
    t.row({"xx", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| a  | long |"), std::string::npos);
    EXPECT_NE(out.find("| xx | y    |"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"1"});
    EXPECT_NE(t.render().find("| 1 |   |   |"), std::string::npos);
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DiffersAcrossSeeds) {
    Rng a(1), b(2);
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UnitValuesInRange) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.next_unit();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, RangeRespectsBounds) {
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.next_range(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

// ---------------------------------------------------------------------------
// parallel::for_shards — until now only exercised indirectly through
// faultsim and the campaign runner; these pin the edge cases directly.
// ---------------------------------------------------------------------------

TEST(ForShards, ZeroItemsInvokesNothingAndDoesNotHang) {
    for (const unsigned workers : {0u, 1u, 4u, 16u}) {
        std::atomic<std::size_t> calls{0};
        parallel::for_shards(0, workers,
                             [&](std::size_t) { ++calls; });
        EXPECT_EQ(calls.load(), 0u) << workers << " workers";
    }
}

TEST(ForShards, FewerItemsThanWorkersClaimsEachIndexExactlyOnce) {
    // 3 items on 16 requested workers: every index runs exactly once,
    // surplus workers must neither double-claim nor deadlock.
    std::vector<std::atomic<int>> hits(3);
    for (auto& h : hits) h = 0;
    parallel::for_shards(3, 16, [&](std::size_t i) {
        ASSERT_LT(i, hits.size());
        ++hits[i];
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ForShards, ResolveWorkersClampsToWork) {
    EXPECT_EQ(parallel::resolve_workers(16, 3), 3u);
    EXPECT_EQ(parallel::resolve_workers(1, 100), 1u);
    EXPECT_GE(parallel::resolve_workers(0, 100), 1u); // hardware threads
    EXPECT_EQ(parallel::resolve_workers(4, 0), 1u);   // never zero
}

TEST(ForShards, WorkerExceptionIsRethrownAndSiblingsComplete) {
    // One shard throws; the pool must join, every *other* index must
    // still have run, and the first exception must surface on the
    // calling thread — a throwing shard cannot leak threads or crash
    // siblings (the contract faultsim and the campaigns rely on).
    for (const unsigned workers : {1u, 4u}) {
        std::vector<std::atomic<int>> hits(17);
        for (auto& h : hits) h = 0;
        bool threw = false;
        try {
            parallel::for_shards(hits.size(), workers, [&](std::size_t i) {
                if (i == 5) throw StandError("shard 5 exploded");
                ++hits[i];
            });
        } catch (const StandError& e) {
            threw = true;
            EXPECT_STREQ(e.what(), "shard 5 exploded");
        }
        EXPECT_TRUE(threw) << workers << " workers";
        for (std::size_t i = 0; i < hits.size(); ++i) {
            if (i == 5) continue;
            EXPECT_EQ(hits[i].load(), 1)
                << "index " << i << ", " << workers << " workers";
        }
        EXPECT_EQ(hits[5].load(), 0);
    }
}

} // namespace
} // namespace ctk
