// The layer-agnostic coverage kernel (core/coverage.hpp): rollup
// arithmetic, the zero-fault rule on BOTH fault domains, fingerprints,
// and the GradedUniverse abstraction mixing a netlist and an ECU
// family in one matrix.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/coverage.hpp"
#include "core/grading.hpp"
#include "gate/circuits.hpp"
#include "gate/grade.hpp"
#include "report/report.hpp"

namespace ctk {
namespace {

core::CoverageEntry entry(const char* id, core::FaultOutcome outcome) {
    core::CoverageEntry e;
    e.id = id;
    e.kind = "sa0";
    e.outcome = outcome;
    return e;
}

TEST(CoverageKernel, RatioNeverDividesByZero) {
    EXPECT_EQ(core::coverage_ratio(0, 0), std::nullopt);
    EXPECT_EQ(core::coverage_ratio(3, 4), std::optional<double>(0.75));
    EXPECT_EQ(core::coverage_ratio(0, 8), std::optional<double>(0.0));
    EXPECT_EQ(core::format_coverage(std::nullopt), "n/a");
    EXPECT_EQ(core::format_coverage(0.5), "50 %");
    EXPECT_EQ(core::format_coverage(1.0), "100 %");
}

TEST(CoverageKernel, GroupRollupsExcludeUntestableAndErrors) {
    core::CoverageGroup group;
    group.name = "g";
    group.entries.push_back(entry("a", core::FaultOutcome::Detected));
    group.entries.push_back(entry("b", core::FaultOutcome::Detected));
    group.entries.push_back(entry("c", core::FaultOutcome::Undetected));
    group.entries.push_back(entry("d", core::FaultOutcome::Untestable));
    group.entries.push_back(entry("e", core::FaultOutcome::FrameworkError));

    EXPECT_EQ(group.detected(), 2u);
    EXPECT_EQ(group.undetected(), 1u);
    EXPECT_EQ(group.untestable(), 1u);
    EXPECT_EQ(group.framework_errors(), 1u);
    // Untestable and framework-error faults make no coverage statement.
    EXPECT_EQ(group.graded(), 3u);
    ASSERT_TRUE(group.coverage().has_value());
    EXPECT_DOUBLE_EQ(*group.coverage(), 2.0 / 3.0);
}

TEST(CoverageKernel, MatrixAggregatesGroupsAndFlagsUnclean) {
    core::CoverageMatrix matrix;
    core::CoverageGroup a;
    a.name = "a";
    a.entries.push_back(entry("x", core::FaultOutcome::Detected));
    core::CoverageGroup b;
    b.name = "b";
    b.entries.push_back(entry("y", core::FaultOutcome::Undetected));
    matrix.groups = {a, b};

    EXPECT_EQ(matrix.fault_count(), 2u);
    EXPECT_EQ(matrix.graded(), 2u);
    EXPECT_EQ(matrix.coverage(), std::optional<double>(0.5));
    EXPECT_TRUE(matrix.clean());

    matrix.groups[1].setup_error = true;
    EXPECT_FALSE(matrix.clean());
    matrix.groups[1].setup_error = false;
    matrix.groups[1].entries.push_back(
        entry("z", core::FaultOutcome::FrameworkError));
    EXPECT_FALSE(matrix.clean());
}

TEST(CoverageKernel, EmptyUniverseIsNaOnBothLayers) {
    // The satellite regression: the seed tree reported 1.0 (gate) and
    // 0/0 (KB) for an empty universe. The kernel defines ONE rule —
    // n/a, never a division by zero — and both layers follow it.

    // Gate side: an empty fault list through the sharded simulator.
    const gate::Netlist net = gate::circuits::c17();
    const std::vector<gate::Pattern> patterns{
        gate::Pattern::single({false, false, false, false, false})};
    const auto sim =
        gate::fault_simulate_sharded(net, {}, patterns, 4);
    EXPECT_EQ(sim.total_faults, 0u);
    EXPECT_EQ(sim.coverage(), std::nullopt);
    const auto group = gate::to_coverage(net, {}, sim);
    EXPECT_EQ(group.coverage(), std::nullopt);

    // KB side: a grading with nothing queued.
    core::GradingCampaign grading;
    const auto empty = grading.run_all();
    EXPECT_EQ(empty.coverage(), std::nullopt);
    EXPECT_EQ(empty.to_coverage().coverage(), std::nullopt);

    // A family grade with no faults agrees too.
    core::FamilyGrade family;
    family.family = "none";
    EXPECT_EQ(family.coverage(), std::nullopt);
    EXPECT_EQ(family.coverage_group().coverage(), std::nullopt);
}

TEST(CoverageKernel, FingerprintTracksOutcomeRelevantFieldsOnly) {
    core::CoverageMatrix matrix;
    core::CoverageGroup group;
    group.name = "g";
    group.entries.push_back(entry("a", core::FaultOutcome::Detected));
    matrix.groups.push_back(group);
    const std::string base = core::coverage_fingerprint(matrix);

    core::CoverageMatrix timed = matrix;
    timed.wall_s = 42.0;
    timed.workers = 8;
    EXPECT_EQ(core::coverage_fingerprint(timed), base); // timing excluded

    core::CoverageMatrix flipped = matrix;
    flipped.groups[0].entries[0].outcome = core::FaultOutcome::Undetected;
    EXPECT_NE(core::coverage_fingerprint(flipped), base);

    core::CoverageMatrix attributed = matrix;
    attributed.groups[0].entries[0].detected_by = 7;
    EXPECT_NE(core::coverage_fingerprint(attributed), base);
}

TEST(CoverageKernel, GradeUniversesMixesBothDomainsInOneMatrix) {
    // The cross-layer promise: a netlist and an ECU family grade into
    // one CoverageMatrix through the same GradedUniverse interface,
    // and outcomes are worker-count independent on both sides.
    std::vector<std::shared_ptr<core::GradedUniverse>> universes;
    universes.push_back(std::make_shared<gate::NetlistUniverse>(
        gate::circuits::c17()));
    universes.push_back(
        std::make_shared<core::KbFamilyUniverse>("wiper"));

    EXPECT_EQ(universes[0]->name(), "c17");
    EXPECT_EQ(universes[1]->name(), "wiper");
    EXPECT_GT(universes[0]->fault_count(), 0u);
    EXPECT_GT(universes[1]->fault_count(), 0u);

    const auto one = core::grade_universes(universes, 1);
    const auto four = core::grade_universes(universes, 4);
    ASSERT_EQ(one.groups.size(), 2u);
    EXPECT_EQ(one.groups[0].name, "c17");
    EXPECT_EQ(one.groups[1].name, "wiper");
    EXPECT_EQ(core::coverage_fingerprint(one),
              core::coverage_fingerprint(four));
    // c17 has no redundant faults and random TPG closes it fully.
    EXPECT_EQ(one.groups[0].coverage(), std::optional<double>(1.0));
    ASSERT_TRUE(one.groups[1].coverage().has_value());
    EXPECT_GT(*one.groups[1].coverage(), 0.0);

    // Both groups flow through the one render/CSV schema.
    const std::string csv = report::coverage_to_csv(one);
    EXPECT_EQ(csv.rfind("group,fault,kind,outcome,detected_by,"
                        "detected_at,flipped_checks,error\n",
                        0),
              0u);
    EXPECT_NE(csv.find("c17,"), std::string::npos);
    EXPECT_NE(csv.find("wiper,"), std::string::npos);
    const std::string table = report::render_coverage(one);
    EXPECT_NE(table.find("c17"), std::string::npos);
    EXPECT_NE(table.find("wiper"), std::string::npos);
}

} // namespace
} // namespace ctk
