// Extended gate-substrate tests: generator property sweeps across sizes,
// fault-universe invariants, sequential fault simulation, shipped-data
// consistency.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "gate/atpg.hpp"
#include "gate/bench_io.hpp"
#include "gate/circuits.hpp"
#include "gate/tpg.hpp"

namespace ctk::gate {
namespace {

// ---------------------------------------------------------------------------
// Generator property sweeps (TEST_P over size)
// ---------------------------------------------------------------------------

class AdderSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderSizes, ArithmeticHoldsAtEverySize) {
    const std::size_t bits = GetParam();
    const Netlist n = circuits::ripple_adder(bits);
    n.validate();
    EXPECT_EQ(n.inputs().size(), 2 * bits + 1);
    EXPECT_EQ(n.outputs().size(), bits + 1);
    const LogicSim sim(n);
    Rng rng(bits * 7 + 1);
    const unsigned mask = bits >= 32 ? ~0u : ((1u << bits) - 1);
    for (int trial = 0; trial < 50; ++trial) {
        const unsigned a = static_cast<unsigned>(rng.next_u64()) & mask;
        const unsigned b = static_cast<unsigned>(rng.next_u64()) & mask;
        const bool cin = rng.next_bool();
        std::vector<bool> in;
        for (std::size_t i = 0; i < bits; ++i) in.push_back((a >> i) & 1);
        for (std::size_t i = 0; i < bits; ++i) in.push_back((b >> i) & 1);
        in.push_back(cin);
        const auto out = sim.eval_scalar(in);
        unsigned long long sum = 0;
        for (std::size_t i = 0; i < bits; ++i)
            sum |= (out[i] ? 1ull : 0ull) << i;
        sum |= (out[bits] ? 1ull : 0ull) << bits;
        EXPECT_EQ(sum, static_cast<unsigned long long>(a) + b + (cin ? 1 : 0))
            << "bits=" << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdderSizes,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

class CounterSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CounterSizes, WrapsAtModulus) {
    const std::size_t bits = GetParam();
    const Netlist n = circuits::counter(bits);
    n.validate();
    const LogicSim sim(n);
    std::vector<PackedWord> state(bits, 0);
    const std::vector<PackedWord> en{~PackedWord{0}};
    const unsigned modulus = 1u << bits;
    for (unsigned t = 1; t <= 2 * modulus + 3; ++t) {
        state = sim.next_state(sim.eval(en, state));
        unsigned q = 0;
        for (std::size_t i = 0; i < bits; ++i)
            q |= static_cast<unsigned>(state[i] & 1u) << i;
        EXPECT_EQ(q, t % modulus) << "bits=" << bits << " t=" << t;
    }
    // With enable low the counter holds.
    const std::vector<PackedWord> hold{0};
    const auto held = sim.next_state(sim.eval(hold, state));
    EXPECT_EQ(held, state);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CounterSizes,
                         ::testing::Values(1u, 2u, 4u, 6u));

class ParitySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParitySizes, OddInputCountsHandled) {
    const std::size_t inputs = GetParam();
    const Netlist n = circuits::parity_tree(inputs);
    const LogicSim sim(n);
    // all-zeros → 0; single one → 1; all-ones → popcount parity.
    EXPECT_FALSE(sim.eval_scalar(std::vector<bool>(inputs, false))[0]);
    std::vector<bool> one(inputs, false);
    one[inputs / 2] = true;
    EXPECT_TRUE(sim.eval_scalar(one)[0]);
    EXPECT_EQ(sim.eval_scalar(std::vector<bool>(inputs, true))[0],
              inputs % 2 == 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParitySizes,
                         ::testing::Values(2u, 3u, 5u, 8u, 13u, 16u));

// ---------------------------------------------------------------------------
// Fault universe invariants
// ---------------------------------------------------------------------------

class FaultUniverse : public ::testing::TestWithParam<const char*> {
protected:
    [[nodiscard]] static Netlist circuit(const std::string& which) {
        if (which == "c17") return circuits::c17();
        if (which == "adder") return circuits::ripple_adder(4);
        if (which == "alu") return circuits::alu(2);
        return circuits::mux_tree(2);
    }
};

TEST_P(FaultUniverse, CollapsedIsSubsetOfFull) {
    const Netlist n = circuit(GetParam());
    const auto full = full_fault_list(n);
    const auto collapsed = collapse_faults(n);
    EXPECT_LT(collapsed.size(), full.size());
    for (const auto& f : collapsed)
        EXPECT_NE(std::find(full.begin(), full.end(), f), full.end())
            << to_string(n, f);
    // No duplicates in either list.
    auto unique_count = [](std::vector<Fault> v) {
        std::sort(v.begin(), v.end(), [](const Fault& a, const Fault& b) {
            return std::tie(a.gate, a.pin, a.sa1) <
                   std::tie(b.gate, b.pin, b.sa1);
        });
        return static_cast<std::size_t>(
            std::unique(v.begin(), v.end()) - v.begin());
    };
    EXPECT_EQ(unique_count(full), full.size());
    EXPECT_EQ(unique_count(collapsed), collapsed.size());
}

TEST_P(FaultUniverse, CollapsedCoverageImpliesFullEquivalentDetection) {
    // A pattern set achieving 100% on the collapsed list must achieve
    // 100% on the full list too (equivalence collapsing is lossless).
    const Netlist n = circuit(GetParam());
    const auto collapsed = collapse_faults(n);
    const auto atpg = run_atpg(n, collapsed);
    if (atpg.untestable > 0) GTEST_SKIP() << "circuit has redundancy";
    const auto full = full_fault_list(n);
    const auto full_result = fault_simulate_parallel(n, full, atpg.patterns);
    EXPECT_DOUBLE_EQ(full_result.coverage().value_or(0.0), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Circuits, FaultUniverse,
                         ::testing::Values("c17", "adder", "alu", "mux"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Sequential fault simulation details
// ---------------------------------------------------------------------------

TEST(SequentialFaultSim, LongerSequencesDetectMore) {
    const Netlist n = circuits::counter(4);
    const auto faults = collapse_faults(n);
    auto coverage_with_frames = [&](std::size_t frames) {
        Pattern p;
        for (std::size_t f = 0; f < frames; ++f) p.frames.push_back({true});
        return fault_simulate_parallel(n, faults, {p})
            .coverage()
            .value_or(0.0);
    };
    const double c2 = coverage_with_frames(2);
    const double c8 = coverage_with_frames(8);
    const double c20 = coverage_with_frames(20);
    EXPECT_LE(c2, c8);
    EXPECT_LE(c8, c20);
    EXPECT_GT(c20, 0.8); // a free-running counter exposes nearly everything
}

TEST(SequentialFaultSim, DffOutputFaultIsStateStuck) {
    // q0 stuck-at-1 in a counter: the LSB never toggles to 0.
    const Netlist n = circuits::counter(2);
    const Fault f{n.require("q0"), -1, true};
    Pattern p;
    for (int i = 0; i < 4; ++i) p.frames.push_back({true});
    const auto r = fault_simulate_parallel(n, {f}, {p});
    EXPECT_EQ(r.detected, 1u);
}

TEST(SequentialFaultSim, RandomTpgWithFramesCoversCounter) {
    const Netlist n = circuits::counter(3);
    RandomTpgOptions opts;
    opts.frames_per_pattern = 12;
    opts.max_patterns = 128;
    const auto r = random_tpg(n, collapse_faults(n), opts);
    EXPECT_GT(r.faultsim.coverage().value_or(0.0), 0.85);
}

// ---------------------------------------------------------------------------
// Shipped data files stay consistent with the in-code circuits
// ---------------------------------------------------------------------------

TEST(ShippedData, C17BenchFileMatchesBuiltin) {
    std::ifstream in(std::string(CTK_SOURCE_DIR) + "/data/c17.bench");
    ASSERT_TRUE(in.good()) << "data/c17.bench missing";
    std::ostringstream body;
    body << in.rdbuf();
    const Netlist file_net = parse_bench(body.str(), "data/c17.bench");
    const Netlist builtin = circuits::c17();
    ASSERT_EQ(file_net.size(), builtin.size());
    // Exhaustive behavioural equivalence (5 inputs → 32 patterns).
    const LogicSim fs(file_net), bs(builtin);
    for (unsigned v = 0; v < 32; ++v) {
        std::vector<bool> in_bits(5);
        for (int i = 0; i < 5; ++i) in_bits[i] = (v >> i) & 1;
        EXPECT_EQ(fs.eval_scalar(in_bits), bs.eval_scalar(in_bits)) << v;
    }
}

TEST(BenchIoExtra, EmittedFileReloadsAfterDiskRoundTrip) {
    namespace fs = std::filesystem;
    const auto path = fs::temp_directory_path() / "ctk_alu.bench";
    {
        std::ofstream out(path);
        out << emit_bench(circuits::alu(3));
    }
    std::ifstream in(path);
    std::ostringstream body;
    body << in.rdbuf();
    const Netlist back = parse_bench(body.str(), path.string());
    EXPECT_EQ(back.size(), circuits::alu(3).size());
    fs::remove(path);
}

TEST(BenchIoExtra, ArityErrorsSurfaceThroughValidate) {
    EXPECT_THROW(
        (void)parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a)\n"),
        SemanticError);
    EXPECT_THROW(
        (void)parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n"),
        SemanticError);
}

} // namespace
} // namespace ctk::gate
