// Unit tests: the regression store (longitudinal knowledge base).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/engine.hpp"
#include "core/kb.hpp"
#include "core/regstore.hpp"
#include "dut/catalogue.hpp"
#include "script/xml_io.hpp"
#include "sim/virtual_stand.hpp"

namespace ctk::core {
namespace {

RunResult run_interior(std::shared_ptr<dut::Dut> device) {
    const auto registry = model::MethodRegistry::builtin();
    const auto script =
        script::compile(kb::suite_for("interior_light"), registry);
    auto desc = kb::stand_for("interior_light");
    TestEngine engine(desc,
                      std::make_shared<sim::VirtualStand>(desc, device));
    return engine.run(script);
}

TEST(RegStore, RecordsOneEntryPerTest) {
    RegressionStore store;
    store.record(run_interior(dut::make_golden("interior_light")), "B1");
    ASSERT_EQ(store.entries().size(), 1u);
    const auto& e = store.entries().front();
    EXPECT_EQ(e.label, "B1");
    EXPECT_EQ(e.script, "paper_int_ill");
    EXPECT_EQ(e.test, "int_ill");
    EXPECT_EQ(e.steps, 10u);
    EXPECT_TRUE(e.passed);
}

TEST(RegStore, DetectsRegressionsBetweenSamples) {
    RegressionStore store;
    store.record(run_interior(dut::make_golden("interior_light")), "B1");
    // Sample B2 is defective.
    const auto mutants = dut::mutants_of("interior_light");
    const auto it = std::find_if(
        mutants.begin(), mutants.end(),
        [](const dut::Mutant& m) { return m.name == "stuck_off"; });
    store.record(run_interior(it->make()), "B2");

    const auto regressed = store.regressions("B1", "B2");
    ASSERT_EQ(regressed.size(), 1u);
    EXPECT_EQ(regressed.front(), "paper_int_ill/int_ill");
    // No regression in the other direction.
    EXPECT_TRUE(store.regressions("B2", "B1").empty());
    EXPECT_EQ(store.ever_failed(),
              (std::vector<std::string>{"paper_int_ill/int_ill"}));
    EXPECT_DOUBLE_EQ(store.pass_rate("paper_int_ill"), 0.5);
    EXPECT_DOUBLE_EQ(store.pass_rate("unknown"), 1.0);
}

TEST(RegStore, CsvRoundTrip) {
    RegressionStore store;
    RegressionEntry e;
    e.label = "P1;Q";
    e.script = "s";
    e.stand = "st";
    e.test = "t";
    e.steps = 7;
    e.failed_steps = 2;
    e.passed = false;
    store.add(e);
    const RegressionStore back =
        RegressionStore::from_csv_text(store.to_csv_text());
    ASSERT_EQ(back.entries().size(), 1u);
    EXPECT_EQ(back.entries()[0].label, "P1;Q"); // quoting survived
    EXPECT_EQ(back.entries()[0].steps, 7u);
    EXPECT_EQ(back.entries()[0].failed_steps, 2u);
    EXPECT_FALSE(back.entries()[0].passed);
}

TEST(RegStore, SaveAndLoad) {
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "ctk_regstore_test.csv").string();
    RegressionStore store;
    store.record(run_interior(dut::make_golden("interior_light")), "B1");
    store.save(path);
    const RegressionStore back = RegressionStore::load(path);
    EXPECT_EQ(back.entries().size(), store.entries().size());
    fs::remove(path);
    EXPECT_THROW((void)RegressionStore::load(path), Error);
}

TEST(RegStore, MalformedCsvRejected) {
    EXPECT_THROW((void)RegressionStore::from_csv_text(
                     "label;script;stand;test;steps;failed_steps;passed\n"
                     "a;b;c;d;not_a_number;0;1\n"),
                 SemanticError);
}

TEST(RegStore, MatchesScriptAndTestCaseInsensitively) {
    // An entry recorded from a differently capitalised sheet must line
    // up with its lower-case sibling in every query; labels stay exact.
    RegressionStore store;
    RegressionEntry was;
    was.label = "B1";
    was.script = "Paper_Int_Ill";
    was.stand = "st";
    was.test = "Int_Ill";
    was.steps = 10;
    was.passed = true;
    store.add(was);
    RegressionEntry now = was;
    now.label = "B2";
    now.script = "paper_int_ill";
    now.test = "int_ill";
    now.passed = false;
    store.add(now);

    EXPECT_EQ(store.regressions("B1", "B2"),
              (std::vector<std::string>{"paper_int_ill/int_ill"}));
    EXPECT_EQ(store.ever_failed(),
              (std::vector<std::string>{"paper_int_ill/int_ill"}));
    EXPECT_DOUBLE_EQ(store.pass_rate("PAPER_INT_ILL"), 0.5);
    // Labels are compared exactly: "b1" is not sample "B1".
    EXPECT_TRUE(store.regressions("b1", "B2").empty());
}

TEST(RegStore, HostileCellContentRoundTrips) {
    RegressionStore store;
    RegressionEntry e;
    e.label = "B1,with;sep\"and\"quotes";
    e.script = "line\nbreak";
    e.stand = "st";
    e.test = "t";
    e.steps = 3;
    e.failed_steps = 1;
    e.passed = true;
    store.add(e);
    const RegressionStore back =
        RegressionStore::from_csv_text(store.to_csv_text());
    ASSERT_EQ(back.entries().size(), 1u);
    EXPECT_EQ(back.entries()[0].label, e.label);
    EXPECT_EQ(back.entries()[0].script, e.script);
    EXPECT_TRUE(back.entries()[0].passed);
}

TEST(RegStore, RowErrorsNameTheRow) {
    const std::string header =
        "label;script;stand;test;steps;failed_steps;passed\n";
    try {
        (void)RegressionStore::from_csv_text(header + "a;b;c;d;1;0\n");
        FAIL() << "short row accepted";
    } catch (const SemanticError& e) {
        EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("expected 7 cells, got 6"),
                  std::string::npos);
    }
    try {
        (void)RegressionStore::from_csv_text(header + "a;b;c;d;1;0;1\n" +
                                             "a;b;c;d;1;0;yes\n");
        FAIL() << "non-boolean passed accepted";
    } catch (const SemanticError& e) {
        EXPECT_NE(std::string(e.what()).find("row 2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("passed must be 0 or 1"),
                  std::string::npos);
    }
}

TEST(RegStore, SaveReportsFailedWrites) {
    // /dev/full accepts the open but fails every write: without the
    // post-write stream check this truncated the store silently.
    if (!std::filesystem::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    RegressionStore store;
    RegressionEntry e;
    e.label = "B1";
    e.script = "s";
    e.stand = "st";
    e.test = "t";
    store.add(e);
    EXPECT_THROW(store.save("/dev/full"), Error);
}

// ---------------------------------------------------------------------------
// Knowledge-base consistency
// ---------------------------------------------------------------------------

TEST(KnowledgeBase, EverySuiteValidatesAndCompiles) {
    const auto registry = model::MethodRegistry::builtin();
    for (const auto& family : kb::families()) {
        const auto suite = kb::suite_for(family);
        EXPECT_NO_THROW(suite.validate(registry)) << family;
        const auto script = script::compile(suite, registry);
        EXPECT_FALSE(script.tests.empty()) << family;
        // Round trip through XML.
        const auto back = script::from_xml_text(
            script::to_xml_text(script), registry);
        EXPECT_EQ(script::to_xml_text(back), script::to_xml_text(script))
            << family;
    }
    EXPECT_THROW((void)kb::suite_for("toaster"), SemanticError);
    EXPECT_THROW((void)kb::stand_for("toaster"), SemanticError);
}

TEST(KnowledgeBase, EveryStandAllocatesItsSuite) {
    const auto registry = model::MethodRegistry::builtin();
    for (const auto& family : kb::families()) {
        const auto script =
            script::compile(kb::suite_for(family), registry);
        const auto desc = kb::stand_for(family);
        for (const auto& test : script.tests)
            EXPECT_NO_THROW((void)stand::allocate_test(desc, script, test))
                << family << "/" << test.name;
    }
}

TEST(KnowledgeBase, StatusNamesAreReusedAcrossFamilies) {
    // The paper's knowledge argument: shared vocabulary. Pressed/Released
    // and Lo/Ho must appear in every pin-based family.
    for (const char* family : {"power_window", "central_lock"}) {
        const auto suite = kb::suite_for(family);
        EXPECT_NE(suite.statuses.find("Pressed"), nullptr) << family;
        EXPECT_NE(suite.statuses.find("Released"), nullptr) << family;
        EXPECT_NE(suite.statuses.find("Lo"), nullptr) << family;
        EXPECT_NE(suite.statuses.find("Ho"), nullptr) << family;
    }
}

TEST(KnowledgeBase, LockStateIsCheckedOverCan) {
    // The central-lock suite exercises get_can end to end.
    const auto suite = kb::suite_for("central_lock");
    const auto registry = model::MethodRegistry::builtin();
    const auto script = script::compile(suite, registry);
    bool found_get_can = false;
    for (const auto& step : script.tests[0].steps)
        for (const auto& a : step.actions)
            if (a.call.method == "get_can") found_get_can = true;
    EXPECT_TRUE(found_get_can);

    // And a swapped-state DUT would be caught: check the golden run's
    // measured payloads.
    auto desc = kb::stand_for("central_lock");
    TestEngine engine(desc, std::make_shared<sim::VirtualStand>(
                                desc, dut::make_golden("central_lock")));
    const auto result = engine.run(script);
    EXPECT_TRUE(result.passed());
    bool checked_payload = false;
    for (const auto& step : result.tests[0].steps)
        for (const auto& c : step.checks)
            if (c.method == "get_can") {
                checked_payload = true;
                EXPECT_FALSE(c.measured_data.empty());
            }
    EXPECT_TRUE(checked_payload);
}

} // namespace
} // namespace ctk::core
