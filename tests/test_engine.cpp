// Integration tests: the full pipeline — suite → XML script → allocation →
// execution on the virtual stand — plus mutation detection and reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/engine.hpp"
#include "core/kb.hpp"
#include "dut/catalogue.hpp"
#include "model/paper.hpp"
#include "report/report.hpp"
#include "script/xml_io.hpp"
#include "sim/virtual_stand.hpp"
#include "stand/paper.hpp"

namespace ctk::core {
namespace {

const model::MethodRegistry kReg = model::MethodRegistry::builtin();

RunResult run_family_on(const std::string& family,
                        std::shared_ptr<dut::Dut> device) {
    const auto suite = kb::suite_for(family);
    const auto script = script::compile(suite, kReg);
    auto desc = kb::stand_for(family);
    TestEngine engine(desc,
                      std::make_shared<sim::VirtualStand>(desc, device));
    return engine.run(script);
}

RunResult run_family(const std::string& family) {
    return run_family_on(family, dut::make_golden(family));
}

TEST(EndToEnd, PaperSuitePassesOnFigure1Stand) {
    const RunResult r = run_family("interior_light");
    EXPECT_TRUE(r.passed()) << report::render_summary(r);
    ASSERT_EQ(r.tests.size(), 1u);
    EXPECT_EQ(r.tests[0].steps.size(), 10u);
    EXPECT_EQ(r.tests[0].failed_steps(), 0u);
    // Every step checks INT_ILL exactly once.
    EXPECT_EQ(r.check_count(), 10u);
}

TEST(EndToEnd, EveryKnowledgeBaseFamilyPassesOnItsStand) {
    for (const auto& family : kb::families()) {
        const RunResult r = run_family(family);
        EXPECT_TRUE(r.passed())
            << family << "\n"
            << report::render_summary(r);
    }
}

TEST(EndToEnd, EnrichedInteriorLightSuitePasses) {
    const auto suite = kb::enriched_interior_light_suite();
    const auto script = script::compile(suite, kReg);
    auto desc = stand::paper::figure1_stand();
    TestEngine engine(desc, std::make_shared<sim::VirtualStand>(
                                desc, dut::make_golden("interior_light")));
    const RunResult r = engine.run(script);
    EXPECT_TRUE(r.passed()) << report::render_summary(r);
    EXPECT_EQ(r.tests.size(), 3u);
}

TEST(EndToEnd, SameScriptRunsOnSupplierStandWithDifferentUbatt) {
    // The crux of the paper: the *identical* XML runs on a stand with
    // ubatt = 13.5 V because limits are expressions over ubatt.
    const auto script = script::compile(model::paper::suite(), kReg);
    auto desc = stand::paper::supplier_stand();
    std::shared_ptr<dut::Dut> device = dut::make_golden("interior_light");
    TestEngine engine(desc,
                      std::make_shared<sim::VirtualStand>(desc, device));
    const RunResult r = engine.run(script);
    EXPECT_TRUE(r.passed()) << report::render_summary(r);
    // Measured Ho must be around 13.5, not 12.
    const auto& step4 = r.tests[0].steps[4];
    ASSERT_EQ(step4.checks.size(), 1u);
    EXPECT_NEAR(step4.checks[0].measured, 13.5, 0.1);
    EXPECT_NEAR(*step4.checks[0].hi, 1.1 * 13.5, 1e-9);
}

TEST(EndToEnd, DeficientStandRaisesAllocationError) {
    const auto script = script::compile(model::paper::suite(), kReg);
    auto desc = stand::paper::deficient_stand();
    TestEngine engine(desc, std::make_shared<sim::VirtualStand>(
                                desc, dut::make_golden("interior_light")));
    EXPECT_THROW((void)engine.run(script), StandError);
}

TEST(EndToEnd, XmlRoundTripPreservesVerdicts) {
    // workbook text → suite → XML text → reparse → run.
    const auto wb = tabular::Workbook::parse_multi(
        model::paper::workbook_text());
    const auto suite = model::suite_from_workbook(wb, "paper_int_ill");
    const std::string xml =
        script::to_xml_text(script::compile(suite, kReg));
    const auto script = script::from_xml_text(xml, kReg);

    auto desc = stand::paper::figure1_stand();
    TestEngine engine(desc, std::make_shared<sim::VirtualStand>(
                                desc, dut::make_golden("interior_light")));
    EXPECT_TRUE(engine.run(script).passed());
}

TEST(EndToEnd, RunTestByNameAndUnknownNameThrows) {
    const auto script = script::compile(model::paper::suite(), kReg);
    auto desc = stand::paper::figure1_stand();
    TestEngine engine(desc, std::make_shared<sim::VirtualStand>(
                                desc, dut::make_golden("interior_light")));
    const TestResult t = engine.run_test(script, "int_ill");
    EXPECT_TRUE(t.passed);
    EXPECT_THROW((void)engine.run_test(script, "ghost"), SemanticError);
}

// ---------------------------------------------------------------------------
// Mutation detection: seeded defects must FAIL their family suite.
// ---------------------------------------------------------------------------

struct MutantExpectation {
    const char* ecu;
    const char* name;
    bool killed_by_base_suite;
};

class MutationRun : public ::testing::TestWithParam<MutantExpectation> {};

TEST_P(MutationRun, SuiteVerdictMatchesExpectation) {
    const auto& expect = GetParam();
    const auto mutants = dut::mutants_of(expect.ecu);
    const auto it = std::find_if(mutants.begin(), mutants.end(),
                                 [&](const dut::Mutant& m) {
                                     return m.name == expect.name;
                                 });
    ASSERT_NE(it, mutants.end());
    const RunResult r = run_family_on(expect.ecu, it->make());
    EXPECT_EQ(!r.passed(), expect.killed_by_base_suite)
        << expect.ecu << "/" << expect.name << "\n"
        << report::render_summary(r);
}

INSTANTIATE_TEST_SUITE_P(
    AllMutants, MutationRun,
    ::testing::Values(
        // Interior light: the paper's own sheet misses two defects — that
        // is a *finding* (see EXPERIMENTS.md E8), encoded here.
        MutantExpectation{"interior_light", "ignore_night", true},
        MutantExpectation{"interior_light", "ignore_fr_door", false},
        MutantExpectation{"interior_light", "no_timeout", true},
        MutantExpectation{"interior_light", "timeout_tenth", true},
        MutantExpectation{"interior_light", "half_voltage", true},
        MutantExpectation{"interior_light", "stuck_off", true},
        MutantExpectation{"interior_light", "inverted_night", true},
        MutantExpectation{"interior_light", "timer_not_reset", false},
        MutantExpectation{"wiper", "interval_ignores_pot", true},
        MutantExpectation{"wiper", "no_fast_mode", true},
        MutantExpectation{"wiper", "stuck_wiping", true},
        MutantExpectation{"wiper", "wipe_double", true},
        MutantExpectation{"power_window", "no_anti_pinch", true},
        MutantExpectation{"power_window", "ignore_ignition", true},
        MutantExpectation{"power_window", "no_limit_stop", true},
        MutantExpectation{"power_window", "reverse_tenth", true},
        MutantExpectation{"central_lock", "no_crash_unlock", true},
        MutantExpectation{"central_lock", "no_autolock", true},
        MutantExpectation{"central_lock", "pulse_tenth", true},
        MutantExpectation{"central_lock", "swapped_actuators", true},
        MutantExpectation{"turn_signal", "double_frequency", true},
        MutantExpectation{"turn_signal", "hazard_only_left", true},
        MutantExpectation{"turn_signal", "lamps_steady", true},
        MutantExpectation{"turn_signal", "no_hazard_toggle", true}),
    [](const auto& info) {
        return std::string(info.param.ecu) + "_" + info.param.name;
    });

TEST(Mutation, EnrichedSuiteKillsTheSurvivors) {
    const auto suite = kb::enriched_interior_light_suite();
    const auto script = script::compile(suite, kReg);
    for (const char* name : {"ignore_fr_door", "timer_not_reset"}) {
        const auto mutants = dut::mutants_of("interior_light");
        const auto it = std::find_if(
            mutants.begin(), mutants.end(),
            [&](const dut::Mutant& m) { return m.name == name; });
        ASSERT_NE(it, mutants.end());
        auto desc = stand::paper::figure1_stand();
        TestEngine engine(
            desc, std::make_shared<sim::VirtualStand>(desc, it->make()));
        EXPECT_FALSE(engine.run(script).passed()) << name;
    }
}

// ---------------------------------------------------------------------------
// Execution semantics details
// ---------------------------------------------------------------------------

TEST(Semantics, FailedCheckReportsMeasuredValueAndLimits) {
    const auto mutants = dut::mutants_of("interior_light");
    const auto it = std::find_if(
        mutants.begin(), mutants.end(),
        [](const dut::Mutant& m) { return m.name == "half_voltage"; });
    const RunResult r = run_family_on("interior_light", it->make());
    ASSERT_FALSE(r.passed());
    const auto& steps = r.tests[0].steps;
    const auto failed = std::find_if(steps.begin(), steps.end(),
                                     [](const StepResult& s) {
                                         return !s.passed;
                                     });
    ASSERT_NE(failed, steps.end());
    const CheckResult& c = failed->checks[0];
    EXPECT_NEAR(c.measured, 6.0, 0.1);
    EXPECT_NE(c.message.find("outside"), std::string::npos);
    EXPECT_NEAR(*c.lo, 8.4, 1e-9);
}

TEST(Semantics, StimuliRecordRealisedValues) {
    const RunResult r = run_family("interior_light");
    const StepResult& step0 = r.tests[0].steps[0];
    // IGN_ST, DS_FL, DS_FR, NIGHT are stimulated in step 0.
    EXPECT_EQ(step0.stimuli.size(), 4u);
    for (const auto& st : step0.stimuli) {
        if (st.signal == "ds_fl") {
            EXPECT_TRUE(std::isinf(st.value)); // Closed realised as open path
        }
        if (st.signal == "ign_st") {
            EXPECT_EQ(st.data, "0001B");
        }
    }
}

TEST(Semantics, StopOnFirstFailureSkipsRemainingSteps) {
    const auto mutants = dut::mutants_of("interior_light");
    const auto it = std::find_if(
        mutants.begin(), mutants.end(),
        [](const dut::Mutant& m) { return m.name == "ignore_night"; });
    const auto script = script::compile(model::paper::suite(), kReg);
    auto desc = stand::paper::figure1_stand();
    TestEngine engine(desc,
                      std::make_shared<sim::VirtualStand>(desc, it->make()));
    RunOptions opts;
    opts.stop_on_first_failure = true;
    const RunResult r = engine.run(script, opts);
    ASSERT_FALSE(r.passed());
    EXPECT_LT(r.tests[0].steps.size(), 10u);
}

/// Paper suite with one timing parameter added to the Lo status. During
/// step 8 the lamp goes out ~19.5 s into the 25 s dwell (the 300 s
/// timeout), so Lo's trailing OK run starts at ~19.5 s — the perfect
/// probe for D2/D3 semantics.
model::TestSuite suite_with_lo_timing(std::optional<double> d2,
                                      std::optional<double> d3) {
    model::TestSuite suite = model::paper::suite();
    model::StatusTable timed;
    for (model::StatusDef st : suite.statuses.statuses()) {
        if (st.name == "Lo") {
            st.d2 = d2;
            st.d3 = d3;
        }
        timed.add(std::move(st));
    }
    suite.statuses = std::move(timed);
    return suite;
}

RunResult run_paper_variant(const model::TestSuite& suite) {
    const auto script = script::compile(suite, kReg);
    auto desc = stand::paper::figure1_stand();
    TestEngine engine(desc, std::make_shared<sim::VirtualStand>(
                                desc, dut::make_golden("interior_light")));
    return engine.run(script);
}

TEST(Semantics, DebounceD2RequiresHoldingTheWindow) {
    // D2 = 10 s: Lo must hold over the final 10 s of each step. In step 8
    // the lamp is only off for the last ~5.5 s → FAIL; all short Lo steps
    // still pass (their trailing run spans the whole dwell).
    const RunResult strict =
        run_paper_variant(suite_with_lo_timing(10.0, std::nullopt));
    ASSERT_FALSE(strict.passed());
    const auto& steps = strict.tests[0].steps;
    for (const auto& s : steps) {
        if (s.nr == 8) {
            EXPECT_FALSE(s.passed);
            EXPECT_NE(s.checks[0].message.find("debounce"),
                      std::string::npos)
                << s.checks[0].message;
        } else {
            EXPECT_TRUE(s.passed) << "step " << s.nr;
        }
    }
    // A D2 the step can satisfy (lamp off for the last ~5.5 s): passes.
    EXPECT_TRUE(
        run_paper_variant(suite_with_lo_timing(4.0, std::nullopt)).passed());
}

TEST(Semantics, TimeoutD3BoundsTheSettleTime) {
    // D3 = 10 s: Lo must have settled within 10 s of step start. In step 8
    // it settles at ~19.5 s → FAIL with the D3 message.
    const RunResult strict =
        run_paper_variant(suite_with_lo_timing(std::nullopt, 10.0));
    ASSERT_FALSE(strict.passed());
    const auto& steps = strict.tests[0].steps;
    for (const auto& s : steps)
        if (s.nr == 8) {
            EXPECT_FALSE(s.passed);
            EXPECT_NE(s.checks[0].message.find("D3"), std::string::npos);
        }
    // D3 = 22 s accommodates the 19.5 s settle: passes.
    EXPECT_TRUE(
        run_paper_variant(suite_with_lo_timing(std::nullopt, 22.0)).passed());
}

TEST(Semantics, SettleD1SkipsEarlySamples) {
    // D1 larger than the dwell means no sample is ever taken — the check
    // must fail with a diagnostic rather than silently passing.
    model::TestSuite suite = model::paper::suite();
    model::StatusTable timed;
    for (model::StatusDef st : suite.statuses.statuses()) {
        if (st.name == "Ho") st.d1 = 1000.0;
        timed.add(std::move(st));
    }
    suite.statuses = std::move(timed);
    const RunResult r = run_paper_variant(suite);
    ASSERT_FALSE(r.passed());
    const auto& step4 = r.tests[0].steps[4];
    EXPECT_NE(step4.checks[0].message.find("no sample"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

TEST(Reports, TestSheetRenderingShowsStatusesAndVerdicts) {
    const auto script = script::compile(model::paper::suite(), kReg);
    auto desc = stand::paper::figure1_stand();
    TestEngine engine(desc, std::make_shared<sim::VirtualStand>(
                                desc, dut::make_golden("interior_light")));
    const RunResult r = engine.run(script);
    const std::string sheet =
        report::render_test_sheet(script.tests[0], r.tests[0]);
    EXPECT_NE(sheet.find("IGN_ST"), std::string::npos);
    EXPECT_NE(sheet.find("Closed"), std::string::npos);
    EXPECT_NE(sheet.find("off after 300s"), std::string::npos);
    EXPECT_NE(sheet.find("PASS"), std::string::npos);
    EXPECT_EQ(sheet.find("FAIL"), std::string::npos);
}

TEST(Reports, SummaryAndCsvContainEveryCheck) {
    const RunResult r = run_family("interior_light");
    const std::string summary = report::render_summary(r);
    EXPECT_NE(summary.find("overall: PASS"), std::string::npos);
    const std::string csv = report::to_csv(r);
    // header + 10 checks
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 11);
    EXPECT_NE(csv.find("int_ill,0,int_ill,Lo,get_u"), std::string::npos);
}

TEST(Reports, AllocationRenderingListsRouting) {
    const auto script = script::compile(model::paper::suite(), kReg);
    auto desc = stand::paper::figure1_stand();
    const auto plan = stand::allocate_test(desc, script, script.tests[0]);
    const std::string out = report::render_allocation(plan);
    EXPECT_NE(out.find("Sw1.1,Sw1.2"), std::string::npos);
    EXPECT_NE(out.find("Ress1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Debounce-window boundaries (D1 settle / D2 debounce / D3 latest-start)
//
// The engine verdict (engine.cpp) is: final sample OK, AND the trailing
// run of OK samples started no later than max(D1, dt − D2), AND (when D3
// is set) no later than D3. These tests pin each clause at its boundary
// with a backend whose measurement is an exact function of time, so the
// sample trace is fully scripted: dwell 1 s, tick 0.1 s → samples at
// 0.1 … 1.0; the trace switches between 5 V (bad) and 1 V (good, limits
// [0.9, 1.1]) at chosen instants.
// ---------------------------------------------------------------------------

/// Backend whose measure_real returns trace(now): the executor's view of
/// the DUT is exactly the programmed waveform.
class TraceBackend final : public sim::StandBackend {
public:
    explicit TraceBackend(std::function<double(double)> trace)
        : trace_(std::move(trace)) {}

    void reset() override { now_s_ = 0.0; }
    void prepare(const stand::Allocation&) override {}
    void advance(double dt) override { now_s_ += dt; }
    [[nodiscard]] double now() const override { return now_s_; }

    void apply_real(const std::string&, const std::string&,
                    const std::vector<std::string>&, double) override {}
    void apply_bits(const std::string&, const std::string&,
                    const std::vector<bool>&) override {}
    [[nodiscard]] double measure_real(const std::string&,
                                      const std::string&,
                                      const std::vector<std::string>&)
        override {
        return trace_(now_s_);
    }
    [[nodiscard]] std::vector<bool>
    measure_bits(const std::string&, const std::string&) override {
        return {};
    }

private:
    std::function<double(double)> trace_;
    double now_s_ = 0.0;
};

/// Minimal one-signal script: a single 1 s step checking get_u on "sig"
/// against [0.9, 1.1] with the given timing parameters.
script::TestScript timing_script(std::optional<double> d1,
                                 std::optional<double> d2,
                                 std::optional<double> d3) {
    script::TestScript script;
    script.name = "timing";
    script::ScriptSignal sig;
    sig.name = "sig";
    sig.direction = model::SignalDirection::Output;
    sig.kind = model::SignalKind::Pin;
    sig.pins = {"p1"};
    script.signals.push_back(sig);

    script::SignalAction check;
    check.signal = "sig";
    check.status = "Good";
    check.call.method = "get_u";
    check.call.kind = model::MethodKind::Get;
    check.call.attribute = "u";
    check.call.min = expr::constant(0.9);
    check.call.max = expr::constant(1.1);
    check.call.d1 = d1;
    check.call.d2 = d2;
    check.call.d3 = d3;

    script::ScriptStep step;
    step.nr = 1;
    step.dt = 1.0;
    step.actions.push_back(check);

    script::ScriptTest test;
    test.name = "t";
    test.steps.push_back(step);
    script.tests.push_back(test);
    return script;
}

/// A stand with one DVM that reaches the signal pin.
stand::StandDescription timing_stand() {
    stand::StandDescription desc("timing-stand");
    stand::Resource dvm;
    dvm.id = "dvm";
    dvm.label = "DVM";
    dvm.methods.push_back({"get_u", {{"u", -1000.0, 1000.0, "V"}}});
    desc.add_resource(dvm);
    desc.connect("dvm", "p1", "w1");
    return desc;
}

CheckResult run_trace(std::optional<double> d1, std::optional<double> d2,
                      std::optional<double> d3,
                      std::function<double(double)> trace) {
    auto desc = timing_stand();
    TestEngine engine(desc,
                      std::make_shared<TraceBackend>(std::move(trace)));
    RunOptions opts;
    opts.tick_s = 0.1;
    opts.init_settle_s = 0.0;
    const RunResult r = engine.run(timing_script(d1, d2, d3), opts);
    return r.tests.at(0).steps.at(0).checks.at(0);
}

TEST(DebounceBoundaries, FinalSampleAloneDoesNotSatisfyD2) {
    // Good only from t ≥ 0.95: the final sample (t = 1.0) satisfies the
    // limits, but the trailing OK run starts at 1.0 > dt − D2 = 0.7 —
    // the trailing-run rule must reject what a check-at-end accepts.
    auto late = [](double t) { return t < 0.95 ? 5.0 : 1.0; };
    const auto cr = run_trace(std::nullopt, 0.3, std::nullopt, late);
    EXPECT_FALSE(cr.passed);
    EXPECT_NEAR(cr.measured, 1.0, 1e-12); // final sample was in-limits
    EXPECT_NE(cr.message.find("debounce"), std::string::npos) << cr.message;
    // Without a debounce window the same trace passes (defaults are
    // check-at-end-of-dwell).
    EXPECT_TRUE(
        run_trace(std::nullopt, std::nullopt, std::nullopt, late).passed);
}

TEST(DebounceBoundaries, D2HoldBoundaryIsInclusive) {
    // D2 = 0.3 requires the run to start at or before 0.7. Good from
    // t ≥ 0.65 → run starts at sample 0.7: exactly on the boundary, PASS.
    EXPECT_TRUE(run_trace(std::nullopt, 0.3, std::nullopt, [](double t) {
                    return t < 0.65 ? 5.0 : 1.0;
                }).passed);
    // Good from t ≥ 0.75 → run starts at 0.8: one tick late, FAIL.
    const auto cr = run_trace(std::nullopt, 0.3, std::nullopt,
                              [](double t) { return t < 0.75 ? 5.0 : 1.0; });
    EXPECT_FALSE(cr.passed);
    EXPECT_NE(cr.message.find("debounce"), std::string::npos) << cr.message;
}

TEST(DebounceBoundaries, SamplesBeforeD1AreNeverRequired) {
    // Garbage until 0.35, good after. With D1 = 0.35 the bad samples are
    // never taken, so even a full-dwell debounce (D2 = 1.0) passes …
    auto settle = [](double t) { return t < 0.35 ? 5.0 : 1.0; };
    EXPECT_TRUE(run_trace(0.35, 1.0, std::nullopt, settle).passed);
    // … while with D1 = 0 the same trace starts its OK run at 0.4 and
    // fails the same debounce window.
    const auto cr = run_trace(std::nullopt, 1.0, std::nullopt, settle);
    EXPECT_FALSE(cr.passed);
    EXPECT_NE(cr.message.find("debounce"), std::string::npos) << cr.message;
}

TEST(DebounceBoundaries, D3LatestStartBoundaryIsInclusive) {
    // Good from t ≥ 0.55 → trailing run starts at sample 0.6.
    auto mid = [](double t) { return t < 0.55 ? 5.0 : 1.0; };
    // D3 = 0.6: settled exactly at the deadline, PASS.
    EXPECT_TRUE(run_trace(std::nullopt, std::nullopt, 0.6, mid).passed);
    // D3 = 0.5: settled one tick after the deadline, FAIL with the D3
    // diagnostic.
    const auto cr = run_trace(std::nullopt, std::nullopt, 0.5, mid);
    EXPECT_FALSE(cr.passed);
    EXPECT_NE(cr.message.find("D3"), std::string::npos) << cr.message;
}

TEST(DebounceBoundaries, FinalSampleMustPassEvenWhenRunWasLong) {
    // Good the whole dwell except the final sample: the long OK run does
    // not rescue a bad end-of-dwell value.
    const auto cr = run_trace(std::nullopt, std::nullopt, std::nullopt,
                              [](double t) { return t < 0.95 ? 1.0 : 5.0; });
    EXPECT_FALSE(cr.passed);
    EXPECT_NE(cr.message.find("end of dwell"), std::string::npos)
        << cr.message;
}

TEST(DebounceBoundaries, FirstSampleOkCountsFromStepStart) {
    // A trace that is good from the very first sample is assumed to have
    // held since step start (nothing earlier is observable): even
    // D2 = dt and a tight D3 = 0 pass.
    auto good = [](double) { return 1.0; };
    EXPECT_TRUE(run_trace(std::nullopt, 1.0, std::nullopt, good).passed);
    EXPECT_TRUE(run_trace(std::nullopt, std::nullopt, 0.0, good).passed);
}

} // namespace
} // namespace ctk::core
