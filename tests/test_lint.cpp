// Unit tests: the suite linter.
#include <gtest/gtest.h>

#include "core/kb.hpp"
#include "model/lint.hpp"
#include "model/paper.hpp"

namespace ctk::model {
namespace {

const MethodRegistry kReg = MethodRegistry::builtin();

std::vector<std::string> codes_for(const std::vector<LintWarning>& warnings,
                                   std::string_view subject) {
    std::vector<std::string> out;
    for (const auto& w : warnings)
        if (str::iequals(w.subject, subject)) out.push_back(w.code);
    return out;
}

bool has(const std::vector<LintWarning>& warnings, const std::string& code,
         std::string_view subject) {
    const auto cs = codes_for(warnings, subject);
    return std::find(cs.begin(), cs.end(), code) != cs.end();
}

TEST(Lint, PaperSheetFindingsAreExactlyTheKnownOnes) {
    // Linting the published sheet reproduces the reproduction's findings:
    //  * W4 on Lo — the hard 0 V floor (noisy-DVM failure, EXPERIMENTS.md);
    //  * W6 on IGN_ST — ignition is never varied (always Off);
    //  * W6 on DS_RL / DS_RR — rear doors only ever Closed.
    const auto warnings = lint(paper::suite(), kReg);
    EXPECT_TRUE(has(warnings, "W4", "Lo"));
    EXPECT_TRUE(has(warnings, "W6", "IGN_ST"));
    EXPECT_TRUE(has(warnings, "W6", "DS_RL"));
    EXPECT_TRUE(has(warnings, "W6", "DS_RR"));
    EXPECT_EQ(warnings.size(), 4u)
        << "unexpected extra findings in the paper sheet";
}

TEST(Lint, CleanSyntheticSuiteHasNoWarnings) {
    TestSuite s;
    s.name = "clean";
    s.signals.add({"IN1", SignalDirection::Input, SignalKind::Pin, {}, ""});
    s.signals.add({"OUT1", SignalDirection::Output, SignalKind::Pin, {}, ""});
    StatusDef on;
    on.name = "On";
    on.method = "put_r";
    on.nom = 0.0;
    on.min = 0.0;
    on.max = 1.0;
    s.statuses.add(on);
    StatusDef off = on;
    off.name = "OffR";
    off.nom = 1e6;
    s.statuses.add(off);
    StatusDef hi;
    hi.name = "Hi";
    hi.method = "get_u";
    hi.nom = 12.0;
    hi.min = 8.0;
    hi.max = 14.0;
    s.statuses.add(hi);
    TestCase t;
    t.name = "t";
    TestStep st0;
    st0.index = 0;
    st0.dt = 0.5;
    st0.assignments = {{"IN1", "On"}, {"OUT1", "Hi"}};
    TestStep st1;
    st1.index = 1;
    st1.dt = 0.5;
    st1.assignments = {{"IN1", "OffR"}, {"OUT1", "Hi"}};
    t.steps = {st0, st1};
    s.tests.push_back(t);
    s.validate(kReg);
    EXPECT_TRUE(lint(s, kReg).empty());
}

TEST(Lint, EachWarningClassTriggers) {
    TestSuite s;
    s.name = "dirty";
    s.signals.add({"IN1", SignalDirection::Input, SignalKind::Pin, {}, ""});
    s.signals.add({"IN2", SignalDirection::Input, SignalKind::Pin, {}, ""});
    s.signals.add({"OUT1", SignalDirection::Output, SignalKind::Pin, {}, ""});
    s.signals.add({"OUT2", SignalDirection::Output, SignalKind::Pin, {}, ""});

    StatusDef drive;
    drive.name = "Drive";
    drive.method = "put_r";
    drive.nom = 0.0;
    drive.min = 0.0;
    drive.max = 1.0;
    s.statuses.add(drive);
    StatusDef unused = drive;
    unused.name = "Ghost"; // W1
    s.statuses.add(unused);
    StatusDef zero;
    zero.name = "ZeroFloor"; // W4 (min == nom)
    zero.method = "get_u";
    zero.nom = 0.0;
    zero.min = 0.0;
    zero.max = 3.0;
    s.statuses.add(zero);

    TestCase t;
    t.name = "t";
    TestStep st0;
    st0.index = 0;
    st0.dt = 0.5;
    st0.assignments = {{"IN1", "Drive"}}; // W3: stimulus, no check
    TestStep st1;
    st1.index = 1;
    st1.dt = 0.5;
    st1.assignments = {{"OUT1", "ZeroFloor"}};
    t.steps = {st0, st1};
    s.tests.push_back(t);
    s.validate(kReg);

    const auto warnings = lint(s, kReg);
    EXPECT_TRUE(has(warnings, "W1", "Ghost"));
    EXPECT_TRUE(has(warnings, "W2", "OUT2"));  // never checked
    EXPECT_TRUE(has(warnings, "W3", "t/step 0"));
    EXPECT_TRUE(has(warnings, "W4", "ZeroFloor"));
    EXPECT_TRUE(has(warnings, "W5", "IN2"));   // never driven
    EXPECT_TRUE(has(warnings, "W6", "IN1"));   // single value
}

TEST(Lint, KnowledgeBaseSuitesCarryOnlyKnownWarningClasses) {
    // Extension suites may carry understood findings (shared statuses a
    // family does not use → W1; the paper's Lo floor → W4; constant
    // inputs → W6) but never W2/W3/W5 — every declared signal is driven
    // and observed, and every stimulating step also checks something.
    for (const auto& family : core::kb::families()) {
        const auto warnings = lint(core::kb::suite_for(family), kReg);
        for (const auto& w : warnings) {
            EXPECT_NE(w.code, "W2") << family << ": " << w.to_string();
            EXPECT_NE(w.code, "W3") << family << ": " << w.to_string();
            EXPECT_NE(w.code, "W5") << family << ": " << w.to_string();
        }
    }
    // The enriched interior-light suite removes the W6 findings on the
    // rear doors? No — it varies DS_FR at night but DS_RL/DS_RR stay
    // constant; pinned here:
    const auto enriched =
        lint(core::kb::enriched_interior_light_suite(), kReg);
    EXPECT_TRUE(has(enriched, "W6", "DS_RL"));
}

} // namespace
} // namespace ctk::model
