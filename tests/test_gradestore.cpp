// Unit tests: the incremental grading store (core/gradestore).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/augment.hpp"
#include "core/gradestore.hpp"
#include "core/grading.hpp"
#include "core/kb.hpp"
#include "report/report.hpp"

namespace ctk::core {
namespace {

PairRecord sample_pair(const std::string& test = "t1",
                       const std::string& fault = "stuck_low@p") {
    PairRecord rec;
    rec.family = "fam";
    rec.test = test;
    rec.plan_hash = "aaaa";
    rec.fault = fault;
    rec.golden_fp = "bbbb";
    rec.differs = true;
    rec.flips = 3;
    rec.first_flip = "t1/0/p";
    return rec;
}

GradingResult run_family(FamilyGradingSetup setup, GradeStore* store,
                         unsigned jobs = 1) {
    GradingOptions opts;
    opts.jobs = jobs;
    opts.store = store;
    GradingCampaign grading(opts);
    grading.add(std::move(setup));
    return grading.run_all();
}

/// The wiper suite with its single test duplicated — a two-test suite,
/// so a one-test edit leaves genuinely unaffected pairs behind.
FamilyGradingSetup two_test_setup() {
    auto setup = kb_grading_setup("wiper");
    auto copy = setup.script.tests.front();
    copy.name = copy.name + "_bis";
    setup.script.tests.push_back(std::move(copy));
    setup.plan.reset(); // script changed; run_all recompiles
    return setup;
}

/// The one-test KB edit: extend the last dwell of the second test.
void edit_second_test(FamilyGradingSetup& setup) {
    setup.script.tests[1].steps.back().dt += 0.1;
    setup.plan.reset();
}

TEST(GradeStore, PairAndCertificateLookup) {
    GradeStore store;
    EXPECT_EQ(store.find_pair("fam", "t1", "aaaa", "stuck_low@p"), nullptr);
    store.put_pair(sample_pair());
    EXPECT_EQ(store.pair_count(), 1u);
    const PairRecord* rec =
        store.find_pair("fam", "t1", "aaaa", "stuck_low@p");
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->differs);
    EXPECT_EQ(rec->flips, 3u);
    // Any key component mismatch is a miss.
    EXPECT_EQ(store.find_pair("fam", "t1", "cccc", "stuck_low@p"), nullptr);
    EXPECT_EQ(store.find_pair("fam", "t2", "aaaa", "stuck_low@p"), nullptr);
    // put_pair overwrites by key.
    auto updated = sample_pair();
    updated.flips = 9;
    store.put_pair(updated);
    EXPECT_EQ(store.pair_count(), 1u);
    EXPECT_EQ(store.find_pair("fam", "t1", "aaaa", "stuck_low@p")->flips,
              9u);

    CertificateRecord cert;
    cert.family = "fam";
    cert.suite_hash = "ssss";
    cert.fault = "offset@p+0.8";
    cert.params = "pppp";
    cert.note = "bounded equivalence";
    store.put_certificate(cert);
    EXPECT_EQ(store.certificate_count(), 1u);
    ASSERT_NE(store.find_certificate("fam", "ssss", "offset@p+0.8", "pppp"),
              nullptr);
    // A different sweep configuration does not inherit the certificate.
    EXPECT_EQ(store.find_certificate("fam", "ssss", "offset@p+0.8", "qqqq"),
              nullptr);
    cert.fault = "scale@p*0.8";
    store.put_certificate(cert);
    const auto certs = store.certificates_for("fam", "ssss");
    ASSERT_EQ(certs.size(), 2u);
    EXPECT_EQ(certs[0]->fault, "offset@p+0.8"); // sorted by key
    EXPECT_TRUE(store.certificates_for("fam", "tttt").empty());
}

TEST(GradeStore, CsvRoundTripWithHostileCells) {
    GradeStore store;
    auto hostile = sample_pair("test,with;sep", "fault\"quoted\"");
    hostile.first_flip = "multi\nline/0/pin";
    store.put_pair(hostile);
    store.put_pair(sample_pair("plain", "stuck_high@p"));
    CertificateRecord cert;
    cert.family = "fam";
    cert.suite_hash = "ssss";
    cert.fault = "offset@p+0.8";
    cert.params = "pppp";
    cert.note = "no divergence in 24 walks;\n\"bounded\" only";
    store.put_certificate(cert);

    const GradeStore back = GradeStore::from_csv_text(
        store.pairs_to_csv_text(), store.certificates_to_csv_text());
    EXPECT_EQ(back.pair_count(), 2u);
    const PairRecord* rec =
        back.find_pair("fam", "test,with;sep", "aaaa", "fault\"quoted\"");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->first_flip, "multi\nline/0/pin");
    const CertificateRecord* c =
        back.find_certificate("fam", "ssss", "offset@p+0.8", "pppp");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->note, cert.note);

    // Emitted bytes depend only on content, not on insertion order.
    GradeStore reordered;
    reordered.put_pair(sample_pair("plain", "stuck_high@p"));
    reordered.put_pair(hostile);
    EXPECT_EQ(reordered.pairs_to_csv_text(), store.pairs_to_csv_text());

    // Empty inputs mean a first run, not an error.
    const GradeStore empty = GradeStore::from_csv_text("", "");
    EXPECT_EQ(empty.pair_count(), 0u);
    EXPECT_EQ(empty.certificate_count(), 0u);
}

TEST(GradeStore, MalformedRowsNameSheetAndRow) {
    const std::string pairs_header =
        "family;test;plan_hash;fault;golden_fp;differs;flips;first_flip\n";
    try {
        (void)GradeStore::from_csv_text(pairs_header + "f;t;h;x;g;1;0\n",
                                        "");
        FAIL() << "short pairs row accepted";
    } catch (const SemanticError& e) {
        EXPECT_NE(std::string(e.what()).find("pairs row 1"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("expected 8 cells, got 7"),
                  std::string::npos)
            << e.what();
    }
    try {
        (void)GradeStore::from_csv_text(
            pairs_header + "f;t;h;x;g;1;0;site\n" + "f;t;h;y;g;maybe;0;\n",
            "");
        FAIL() << "non-boolean differs accepted";
    } catch (const SemanticError& e) {
        EXPECT_NE(std::string(e.what()).find("pairs row 2"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("differs must be 0 or 1"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW((void)GradeStore::from_csv_text(
                     pairs_header + "f;t;h;x;g;1;lots;site\n", ""),
                 SemanticError);
    try {
        (void)GradeStore::from_csv_text(
            "", "family;suite_hash;fault;params;note\nf;s;x;p\n");
        FAIL() << "short certs row accepted";
    } catch (const SemanticError& e) {
        EXPECT_NE(std::string(e.what()).find("certs row 1"),
                  std::string::npos)
            << e.what();
    }
}

TEST(GradeStore, SaveLoadRoundTripAndFailureModes) {
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() / "ctk_gradestore_test";
    fs::remove_all(dir);

    // Loading a store that was never saved is the first-run case.
    const GradeStore fresh = GradeStore::load(dir.string());
    EXPECT_EQ(fresh.pair_count(), 0u);

    GradeStore store;
    store.put_pair(sample_pair());
    store.save(dir.string()); // creates the directory
    const GradeStore back = GradeStore::load(dir.string());
    EXPECT_EQ(back.pair_count(), 1u);
    ASSERT_NE(back.find_pair("fam", "t1", "aaaa", "stuck_low@p"), nullptr);

    // A failing write must throw, never truncate silently: point the
    // pairs file at /dev/full, where open succeeds and writes fail.
    if (fs::exists("/dev/full")) {
        fs::remove(dir / "gradestore_pairs.csv");
        fs::create_symlink("/dev/full", dir / "gradestore_pairs.csv");
        EXPECT_THROW(store.save(dir.string()), Error);
    }
    fs::remove_all(dir);
}

TEST(GradeStore, WarmGradingIsByteIdenticalToCold) {
    const auto cold = run_family(two_test_setup(), nullptr);
    const std::string want_fp = outcome_fingerprint(cold);
    const std::string want_csv = report::coverage_to_csv(cold.to_coverage());
    const std::size_t faults = cold.fault_count();

    GradeStore store;
    const auto warm_empty = run_family(two_test_setup(), &store);
    EXPECT_EQ(outcome_fingerprint(warm_empty), want_fp);
    EXPECT_EQ(report::coverage_to_csv(warm_empty.to_coverage()), want_csv);
    EXPECT_EQ(store.stats().pair_misses, 2 * faults); // two tests/fault
    EXPECT_EQ(store.stats().pair_hits, 0u);
    EXPECT_EQ(store.pair_count(), 2 * faults);

    // Second run, populated store, different worker count: everything
    // served, output still byte-identical.
    store.stats() = {};
    const auto warm = run_family(two_test_setup(), &store, 8);
    EXPECT_EQ(outcome_fingerprint(warm), want_fp);
    EXPECT_EQ(report::coverage_to_csv(warm.to_coverage()), want_csv);
    EXPECT_EQ(store.stats().pair_hits, 2 * faults);
    EXPECT_EQ(store.stats().pair_misses, 0u);
    EXPECT_EQ(store.stats().faults_skipped, faults);
    EXPECT_EQ(store.stats().faults_replayed, 0u);
}

TEST(GradeStore, OneTestEditReplaysOnlyAffectedPairs) {
    GradeStore store;
    (void)run_family(two_test_setup(), &store); // populate

    auto edited = two_test_setup();
    edit_second_test(edited);
    const auto cold = run_family(std::move(edited), nullptr);
    const std::size_t faults = cold.fault_count();

    store.stats() = {};
    auto warm_setup = two_test_setup();
    edit_second_test(warm_setup);
    const auto warm = run_family(std::move(warm_setup), &store);
    // The unedited test's pairs are served; only the edited test's
    // pairs replay — and the merged outcome is byte-identical to cold.
    EXPECT_EQ(store.stats().pair_hits, faults);
    EXPECT_EQ(store.stats().pair_misses, faults);
    EXPECT_EQ(store.stats().faults_replayed, faults);
    EXPECT_EQ(store.stats().faults_skipped, 0u);
    EXPECT_EQ(outcome_fingerprint(warm), outcome_fingerprint(cold));
    EXPECT_EQ(report::coverage_to_csv(warm.to_coverage()),
              report::coverage_to_csv(cold.to_coverage()));
}

TEST(GradeStore, StaleGoldenFingerprintForcesReplay) {
    const auto cold = run_family(kb_grading_setup("wiper"), nullptr);
    const std::size_t faults = cold.fault_count();

    // A store whose keys all match but whose golden fingerprints come
    // from another DUT model: every record claims "no difference" —
    // trusting any of them would corrupt the grade.
    auto setup = kb_grading_setup("wiper");
    const auto hashes = plan_test_hashes(*setup.plan, setup.stand);
    const std::size_t tests = setup.plan->tests().size();
    GradeStore store;
    for (const auto& fault : setup.universe)
        for (std::size_t t = 0; t < tests; ++t) {
            PairRecord rec;
            rec.family = setup.family;
            rec.test = setup.plan->tests()[t].name;
            rec.plan_hash = hashes[t];
            rec.fault = fault.id();
            rec.golden_fp = "stale";
            rec.differs = false;
            store.put_pair(rec);
        }

    const auto warm = run_family(std::move(setup), &store);
    EXPECT_EQ(store.stats().pair_stale, faults * tests);
    EXPECT_EQ(store.stats().pair_hits, 0u);
    EXPECT_EQ(outcome_fingerprint(warm), outcome_fingerprint(cold));
}

TEST(GradeStore, CertificatesCarryAcrossRuns) {
    // interior_light has four bounded-equivalent faults. budget=0 skips
    // the candidate search but still runs the equivalence sweeps — the
    // cheapest configuration that earns certificates.
    AugmentOptions opts;
    opts.jobs = 2;
    opts.budget = 0;
    opts.equiv_walks = 4;
    opts.equiv_steps = 12;

    GradeStore store;
    opts.store = &store;
    const auto first = augment_kb(opts, {"interior_light"});
    ASSERT_TRUE(first.clean());
    const std::size_t untestable = first.families.front().untestable();
    ASSERT_GT(untestable, 0u);
    EXPECT_EQ(store.certificate_count(), untestable);
    EXPECT_EQ(store.stats().cert_hits, 0u); // first run earned, not spent

    // Second augment run against the same store: certified faults skip
    // their sweeps, the result is byte-identical.
    store.stats() = {};
    const auto second = augment_kb(opts, {"interior_light"});
    EXPECT_EQ(store.stats().cert_hits, untestable);
    EXPECT_EQ(augmentation_fingerprint(second),
              augmentation_fingerprint(first));

    // Plain grading honours the carried certificates too: the swept
    // faults leave Undetected for Untestable, with the certificate note
    // carried into the error column.
    GradingOptions gopts;
    gopts.jobs = 1;
    gopts.store = &store;
    store.stats() = {};
    GradingCampaign grading(gopts);
    grading.add(kb_grading_setup("interior_light"));
    const auto graded = grading.run_all();
    EXPECT_EQ(store.stats().cert_hits, untestable);
    const auto& family = graded.families.front();
    std::size_t reclassified = 0;
    for (const auto& f : family.faults)
        if (f.outcome == FaultOutcome::Untestable) {
            ++reclassified;
            EXPECT_FALSE(f.error_message.empty()) << f.fault.id();
        }
    EXPECT_EQ(reclassified, untestable);
    // Without the store the same faults grade Undetected.
    GradingCampaign bare;
    bare.add(kb_grading_setup("interior_light"));
    const auto ungraded = bare.run_all();
    for (const auto& f : ungraded.families.front().faults)
        EXPECT_NE(f.outcome, FaultOutcome::Untestable) << f.fault.id();
}

TEST(GradeStore, PlanHashTracksContentNotIdentity) {
    auto a = two_test_setup();
    auto b = two_test_setup();
    const auto plan_a = CompiledPlan::compile(a.script, a.stand, RunOptions{});
    const auto ha = plan_suite_hash(plan_a, a.stand);
    EXPECT_EQ(plan_suite_hash(
                  CompiledPlan::compile(b.script, b.stand, RunOptions{}),
                  b.stand),
              ha); // same content, fresh objects

    edit_second_test(b);
    const auto plan_b = CompiledPlan::compile(b.script, b.stand, RunOptions{});
    EXPECT_NE(plan_suite_hash(plan_b, b.stand), ha);
    // The edit moved exactly one per-test hash.
    const auto ta = plan_test_hashes(plan_a, a.stand);
    const auto tb = plan_test_hashes(plan_b, b.stand);
    ASSERT_EQ(ta.size(), 2u);
    ASSERT_EQ(tb.size(), 2u);
    EXPECT_EQ(ta[0], tb[0]);
    EXPECT_NE(ta[1], tb[1]);

    // RunOptions are part of the key: a different tick is a different
    // plan even for identical scripts.
    RunOptions slower;
    slower.tick_s *= 2;
    EXPECT_NE(plan_suite_hash(CompiledPlan::compile(a.script, a.stand, slower),
                              a.stand),
              ha);
}

} // namespace
} // namespace ctk::core
