// Unit + stress tests for the campaign execution layer: deterministic
// result ordering at any worker count, framework-failure isolation, and
// exact equivalence of the jobs=1 path with sequential TestEngine runs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/kb.hpp"
#include "dut/catalogue.hpp"
#include "report/report.hpp"
#include "sim/latency.hpp"
#include "sim/virtual_stand.hpp"

namespace ctk::core {
namespace {

const model::MethodRegistry kReg = model::MethodRegistry::builtin();

CampaignResult run_campaign(std::vector<CampaignJob> jobs, unsigned workers) {
    CampaignOptions opts;
    opts.jobs = workers;
    CampaignRunner runner(opts);
    for (auto& job : jobs) runner.add(std::move(job));
    return runner.run_all();
}

TEST(Campaign, KbFamiliesAllPass) {
    const auto result = run_campaign(kb_campaign(), 2);
    ASSERT_EQ(result.jobs.size(), kb::families().size());
    EXPECT_TRUE(result.passed());
    EXPECT_EQ(result.framework_failures(), 0u);
    EXPECT_EQ(result.failed_jobs(), 0u);
    EXPECT_EQ(result.test_count(), result.jobs.size());
    EXPECT_GT(result.check_count(), 0u);
    for (const auto& j : result.jobs) EXPECT_GE(j.wall_s, 0.0);
}

TEST(Campaign, CanonicalFamiliesCollapseOrderDuplicatesAndDefault) {
    const auto all = kb::families();
    // Empty resolves to the full catalogue, in catalogue order.
    EXPECT_EQ(kb::canonical_families({}), all);
    // Any spelling of the full set is the same canonical list.
    std::vector<std::string> reversed(all.rbegin(), all.rend());
    EXPECT_EQ(kb::canonical_families(reversed), all);
    // Order and duplicates collapse for partial sets too.
    EXPECT_EQ(kb::canonical_families({"wiper", "interior_light", "wiper"}),
              (std::vector<std::string>{"interior_light", "wiper"}));
    // Unknown names survive (appended once) so compilation can report
    // them instead of silently grading a different set.
    EXPECT_EQ(kb::canonical_families({"nope", "wiper", "nope"}),
              (std::vector<std::string>{"wiper", "nope"}));
}

TEST(Campaign, ResultOrderIsSubmissionOrderForEveryWorkerCount) {
    // Give earlier jobs *more* emulated instrument latency than later
    // ones, so with several workers the completion order is roughly the
    // reverse of the submission order — the result order must not care.
    auto build = [&]() {
        std::vector<CampaignJob> jobs;
        const auto families = kb::families();
        for (std::size_t i = 0; i < families.size(); ++i) {
            CampaignJob job = family_job(families[i]);
            sim::LatencyOptions lat;
            lat.advance_s = static_cast<double>(families.size() - i) * 20e-6;
            auto inner = job.make_backend;
            job.make_backend =
                [inner, lat](const stand::StandDescription& desc) {
                    return std::make_shared<sim::LatencyBackend>(inner(desc),
                                                                 lat);
                };
            jobs.push_back(std::move(job));
        }
        return jobs;
    };

    const auto sequential = run_campaign(build(), 1);
    std::vector<std::string> expected_names;
    for (const auto& j : sequential.jobs) expected_names.push_back(j.name);
    ASSERT_EQ(expected_names, kb::families());

    for (unsigned workers : {2u, 3u, 8u}) {
        const auto result = run_campaign(build(), workers);
        ASSERT_EQ(result.jobs.size(), sequential.jobs.size()) << workers;
        for (std::size_t i = 0; i < result.jobs.size(); ++i) {
            EXPECT_EQ(result.jobs[i].name, expected_names[i]) << workers;
            EXPECT_EQ(verdict_fingerprint(result.jobs[i]),
                      verdict_fingerprint(sequential.jobs[i]))
                << workers;
        }
    }
}

TEST(Campaign, ThrowingJobIsIsolatedFromSiblings) {
    // Job 1 of 3 runs on a stand stripped of its variables, so the
    // engine throws StandError (missing required variables) before any
    // step executes. The sibling jobs must be unaffected.
    for (unsigned workers : {1u, 3u}) {
        std::vector<CampaignJob> copy;
        copy.push_back(family_job("interior_light"));
        CampaignJob b = family_job("wiper");
        b.name = "wiper-broken";
        b.stand = stand::StandDescription("empty-stand");
        copy.push_back(std::move(b));
        copy.push_back(family_job("central_lock"));

        const auto result = run_campaign(std::move(copy), workers);
        ASSERT_EQ(result.jobs.size(), 3u);
        EXPECT_FALSE(result.passed());
        EXPECT_EQ(result.framework_failures(), 1u);
        EXPECT_EQ(result.failed_jobs(), 1u);

        EXPECT_TRUE(result.jobs[0].passed());
        EXPECT_TRUE(result.jobs[1].framework_error);
        EXPECT_NE(result.jobs[1].error_message.find("variable"),
                  std::string::npos)
            << result.jobs[1].error_message;
        EXPECT_TRUE(result.jobs[2].passed());
        // Framework failures are not counted as executed tests.
        EXPECT_EQ(result.test_count(), 2u);
    }
}

TEST(Campaign, BrokenBackendFactoryIsAFrameworkFailure) {
    CampaignJob job = family_job("turn_signal");
    job.make_backend = [](const stand::StandDescription&)
        -> std::shared_ptr<sim::StandBackend> {
        throw StandError("instrument bus offline");
    };
    std::vector<CampaignJob> jobs;
    jobs.push_back(std::move(job));
    const auto result = run_campaign(std::move(jobs), 2);
    ASSERT_EQ(result.jobs.size(), 1u);
    EXPECT_TRUE(result.jobs[0].framework_error);
    EXPECT_EQ(result.jobs[0].error_message, "instrument bus offline");
}

TEST(Campaign, MissingFactoryIsReportedNotFatal) {
    CampaignJob job = family_job("wiper");
    job.make_backend = nullptr;
    std::vector<CampaignJob> jobs;
    jobs.push_back(std::move(job));
    const auto result = run_campaign(std::move(jobs), 1);
    ASSERT_EQ(result.jobs.size(), 1u);
    EXPECT_TRUE(result.jobs[0].framework_error);
    EXPECT_NE(result.jobs[0].error_message.find("backend"),
              std::string::npos);
}

TEST(Campaign, SingleWorkerMatchesSequentialEngineRunsExactly) {
    // jobs=1 must be bit-identical to hand-rolled sequential
    // TestEngine::run calls over the same scripts and stands.
    std::vector<std::string> sequential;
    for (const auto& family : kb::families()) {
        const auto script = script::compile(kb::suite_for(family), kReg);
        auto desc = kb::stand_for(family);
        TestEngine engine(desc, std::make_shared<sim::VirtualStand>(
                                    desc, dut::make_golden(family)));
        sequential.push_back(report::to_csv(engine.run(script)));
    }

    const auto result = run_campaign(kb_campaign(), 1);
    EXPECT_EQ(result.workers, 1u);
    ASSERT_EQ(result.jobs.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        ASSERT_FALSE(result.jobs[i].framework_error);
        EXPECT_EQ(report::to_csv(result.jobs[i].run), sequential[i])
            << result.jobs[i].name;
    }
}

TEST(Campaign, StressManyJobsManyWorkersStaysDeterministic) {
    // 8 rounds over the KB (40 jobs) at a worker count far above the
    // machine's core count: ordering and verdicts must match jobs=1.
    auto build = [&]() {
        std::vector<CampaignJob> jobs;
        for (int r = 0; r < 8; ++r)
            for (auto& job : kb_campaign()) {
                job.name += "#" + std::to_string(r);
                jobs.push_back(std::move(job));
            }
        return jobs;
    };
    const auto baseline = run_campaign(build(), 1);
    const auto wide = run_campaign(build(), 16);
    ASSERT_EQ(wide.jobs.size(), baseline.jobs.size());
    EXPECT_TRUE(wide.passed());
    for (std::size_t i = 0; i < baseline.jobs.size(); ++i)
        EXPECT_EQ(verdict_fingerprint(wide.jobs[i]),
                  verdict_fingerprint(baseline.jobs[i]));
}

TEST(Campaign, RunnerDefaultsAndQueueLifecycle) {
    CampaignRunner runner;
    EXPECT_EQ(runner.queued(), 0u);
    runner.add(family_job("wiper"));
    EXPECT_EQ(runner.queued(), 1u);
    const auto first = runner.run_all();
    EXPECT_EQ(first.jobs.size(), 1u);
    EXPECT_GE(first.workers, 1u);
    // run_all clears the queue; a second run is empty, not a rerun.
    EXPECT_EQ(runner.queued(), 0u);
    const auto second = runner.run_all();
    EXPECT_TRUE(second.jobs.empty());
    EXPECT_TRUE(second.passed());
}

TEST(Campaign, RenderCampaignListsJobsAndSummary) {
    const auto result = run_campaign(kb_campaign(), 2);
    const std::string out = render_campaign(result);
    for (const auto& family : kb::families())
        EXPECT_NE(out.find(family), std::string::npos) << out;
    EXPECT_NE(out.find("PASSED"), std::string::npos);
    EXPECT_NE(out.find("worker(s)"), std::string::npos);
}

} // namespace
} // namespace ctk::core
